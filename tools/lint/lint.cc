#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/string_util.h"

namespace eadrl::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer. Produces a token stream (identifiers / numbers / string and char
// literals / punctuation), a per-line comment map, and the list of
// preprocessor directives. Comments and literal *contents* never reach the
// token-matching rules, so a string mentioning "rand()" cannot trip a ban.
// Handles //, /* */, "..." with escapes, '...' with escapes, and raw strings
// R"delim(...)delim". Line numbers are 1-based.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kCharLit, kPunct };

struct Token {
  TokKind kind;
  std::string text;  // literals keep their quoted content for the event rule.
  size_t line = 0;
};

struct Directive {
  std::string text;  // directive body after '#', comments stripped.
  size_t line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::map<size_t, std::string> comments;  // line -> concatenated comment text
  std::vector<Directive> directives;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexedFile Run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && Peek(1) == '"') {
        LexRawString();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'' && !PrecededByDigit()) {
        LexCharLit();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdent();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        LexNumber();
        continue;
      }
      out_.tokens.push_back({TokKind::kPunct, std::string(1, c), line_});
      ++pos_;
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  // Digit separators aside, a ' right after an alnum inside a number (1'000)
  // is not a char literal.
  bool PrecededByDigit() const {
    return pos_ > 0 && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  void AddComment(size_t line, const std::string& chunk) {
    std::string& slot = out_.comments[line];
    if (!slot.empty()) slot += ' ';
    slot += chunk;
  }

  void LexLineComment() {
    pos_ += 2;
    std::string chunk;
    while (pos_ < text_.size() && text_[pos_] != '\n') {
      // A backslash-newline continues a // comment onto the next line.
      if (text_[pos_] == '\\' && Peek(1) == '\n') {
        AddComment(line_, chunk);
        chunk.clear();
        pos_ += 2;
        ++line_;
        continue;
      }
      chunk += text_[pos_++];
    }
    AddComment(line_, chunk);
  }

  void LexBlockComment() {
    pos_ += 2;
    std::string chunk;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (text_[pos_] == '\n') {
        AddComment(line_, chunk);
        chunk.clear();
        ++line_;
        ++pos_;
        continue;
      }
      chunk += text_[pos_++];
    }
    AddComment(line_, chunk);
  }

  void LexDirective() {
    const size_t start_line = line_;
    ++pos_;  // consume '#'
    std::string body;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') break;
      if (c == '\\' && Peek(1) == '\n') {  // continuation
        body += ' ';
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        body += ' ';
        continue;
      }
      body += c;
      ++pos_;
    }
    out_.directives.push_back({body, start_line});
    at_line_start_ = false;
  }

  void LexString() {
    const size_t start_line = line_;
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        value += text_[pos_];
        value += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '\n') ++line_;  // unterminated; keep line count sane
      value += text_[pos_++];
    }
    if (pos_ < text_.size()) ++pos_;  // closing quote
    out_.tokens.push_back({TokKind::kString, value, start_line});
  }

  void LexRawString() {
    const size_t start_line = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') delim += text_[pos_++];
    if (pos_ < text_.size()) ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    std::string value;
    while (pos_ < text_.size() && text_.compare(pos_, closer.size(), closer) != 0) {
      if (text_[pos_] == '\n') ++line_;
      value += text_[pos_++];
    }
    pos_ = std::min(text_.size(), pos_ + closer.size());
    out_.tokens.push_back({TokKind::kString, value, start_line});
  }

  void LexCharLit() {
    const size_t start_line = line_;
    ++pos_;
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        value += text_[pos_];
        value += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '\n') break;  // unterminated
      value += text_[pos_++];
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') ++pos_;
    out_.tokens.push_back({TokKind::kCharLit, value, start_line});
  }

  void LexIdent() {
    const size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    std::string word = text_.substr(start, pos_ - start);
    // Encoding-prefixed strings (u8"...", L"...") lex as ident + string;
    // that is fine for every rule here.
    out_.tokens.push_back({TokKind::kIdent, std::move(word), line_});
  }

  void LexNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (IsIdentChar(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == '\'' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E' ||
              text_[pos_ - 1] == 'p' || text_[pos_ - 1] == 'P')))) {
      ++pos_;
    }
    out_.tokens.push_back(
        {TokKind::kNumber, text_.substr(start, pos_ - start), line_});
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

// ---------------------------------------------------------------------------
// Path helpers.
// ---------------------------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// src/nn/dense.h -> EADRL_NN_DENSE_H_ (the leading src/ is dropped so guards
// match the include path; other roots — tests/, bench/, tools/ — keep theirs).
std::string CanonicalGuard(const std::string& repo_relative_path) {
  std::string trimmed = repo_relative_path;
  if (StartsWith(trimmed, "src/")) trimmed = trimmed.substr(4);
  std::string guard = "EADRL_";
  for (char c : trimmed) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

// Extracts `"path"` or `<path>` from an include directive body.
bool ParseIncludeTarget(const std::string& directive, std::string* target,
                        bool* angled) {
  size_t i = 0;
  while (i < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[i]))) {
    ++i;
  }
  if (directive.compare(i, 7, "include") != 0) return false;
  i += 7;
  while (i < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[i]))) {
    ++i;
  }
  if (i >= directive.size()) return false;
  const char open = directive[i];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return false;
  const size_t end = directive.find(close, i + 1);
  if (end == std::string::npos) return false;
  *target = directive.substr(i + 1, end - i - 1);
  *angled = open == '<';
  return true;
}

// ---------------------------------------------------------------------------
// Suppression handling. A comment that *begins* with the marker — the
// trailing-comment idiom `code;  // NOLINT(rule-id): reason` — suppresses
// matching findings on its line; prose that merely mentions the marker
// mid-sentence (like this paragraph) is ignored. Any suppression that
// suppressed nothing (or names an unknown rule) becomes a stale-nolint
// finding.
// ---------------------------------------------------------------------------

struct Suppression {
  size_t line;
  std::string rule;
  bool used = false;
};

std::vector<Suppression> ParseSuppressions(
    const std::map<size_t, std::string>& comments,
    std::vector<Finding>* findings, const std::string& file) {
  std::vector<Suppression> out;
  for (const auto& [line, text] : comments) {
    const size_t at = text.find_first_not_of(" \t");
    if (at == std::string::npos || text.compare(at, 6, "NOLINT") != 0) {
      continue;
    }
    const size_t open = at + 6;
    if (open >= text.size() || text[open] != '(') {
      findings->push_back({file, line, "stale-nolint",
                           "bare NOLINT is not honored; use "
                           "NOLINT(rule-id) so the suppression is scoped"});
      continue;
    }
    const size_t close = text.find(')', open);
    if (close == std::string::npos) {
      findings->push_back(
          {file, line, "stale-nolint", "unterminated NOLINT(...) list"});
      continue;
    }
    std::stringstream ids(text.substr(open + 1, close - open - 1));
    std::string id;
    while (std::getline(ids, id, ',')) {
      const size_t first = id.find_first_not_of(" \t");
      const size_t last = id.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      out.push_back({line, id.substr(first, last - first + 1), false});
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

const std::map<std::string, std::string>& RuleCatalog() {
  static const std::map<std::string, std::string> kCatalog = {
      {"banned-rand",
       "rand()/srand() break run-to-run determinism; use eadrl::common::Rng"},
      {"banned-io",
       "std::cout/printf in src/; route output through EADRL_LOG or eadrl::obs"},
      {"naked-new",
       "naked new in src/; use std::make_unique/std::vector (allocator and "
       "intentional-leak singletons carry NOLINT)"},
      {"naked-delete",
       "naked delete in src/; ownership belongs to smart pointers"},
      {"wall-clock",
       "wall-clock reads outside src/common//src/obs; keep domain code "
       "date-free for determinism"},
      {"include-bits",
       "#include <bits/...> is libstdc++-internal and non-portable"},
      {"include-self-first",
       "a .cc must include its own header first to prove it is self-contained"},
      {"header-guard",
       "header guards must match the canonical EADRL_<PATH>_H_ form"},
      {"event-registry",
       "telemetry event kinds in src/ must be declared in src/obs/events.def"},
      {"event-registry-stale",
       "events.def entry that nothing in src/ emits any more"},
      {"span-registry",
       "trace span names in src/ and tools/ must be declared in "
       "src/obs/spans.def"},
      {"span-registry-stale",
       "spans.def entry that nothing in src/ or tools/ opens any more"},
      {"todo-tag",
       "TODO/FIXME comments must carry an owner or issue tag: TODO(tag): ..."},
      {"transpose-matmul",
       "Transpose().MatMul/MatVec chains in src/ materialize the transpose; "
       "use the fused MatMulTransposeA/B / TransposeMatVec kernels"},
      {"guarded-by",
       "std:: container members of a mutex-bearing class in src/{serve,par,"
       "obs,core} must carry EADRL_GUARDED_BY(mu) or an explicit "
       "EADRL_UNGUARDED, and every EADRL_GUARDED_BY must name a sibling "
       "mutex"},
      {"requires-self-lock",
       "a function annotated EADRL_REQUIRES(mu) must not acquire mu itself; "
       "the caller already holds it"},
      {"lock-order",
       "scoped lock acquisitions must respect the rank order declared in "
       "src/chk/lock_order.def (a held lock's rank caps what may be taken)"},
      {"lock-registry",
       "ranked-mutex bindings (EADRL_LOCK_RANK / EADRL_LOCK_ORDERED) must "
       "name a rank declared in src/chk/lock_order.def, one rank per "
       "repo-unique member name"},
      {"lock-registry-stale",
       "lock_order.def entry that no mutex in src/ binds any more"},
      {"stale-nolint",
       "NOLINT suppression that no longer suppresses any finding"},
  };
  return kCatalog;
}

namespace {

// Shared skeleton of the two X-macro registries (events.def / spans.def):
// MACRO(name, "description") entries, one per line, duplicates and malformed
// entries reported under `rule`.
std::map<std::string, size_t> ParseRegistryDef(const std::string& macro,
                                               const std::string& rule,
                                               const std::string& path,
                                               const std::string& contents,
                                               std::vector<Finding>* findings,
                                               std::vector<std::string>* order =
                                                   nullptr) {
  std::map<std::string, size_t> names;
  LexedFile lexed = Lexer(contents).Run();
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != macro) {
      continue;
    }
    if (i + 2 >= toks.size() || toks[i + 1].text != "(" ||
        toks[i + 2].kind != TokKind::kIdent) {
      if (findings != nullptr) {
        findings->push_back({path, toks[i].line, rule,
                             "malformed " + macro + " entry; expected " +
                                 macro + "(name, \"description\")"});
      }
      continue;
    }
    const Token& name = toks[i + 2];
    if (names.count(name.text) != 0) {
      if (findings != nullptr) {
        findings->push_back({path, name.line, rule,
                             "duplicate registry entry '" + name.text + "'"});
      }
    } else if (order != nullptr) {
      order->push_back(name.text);
    }
    names.emplace(name.text, name.line);
  }
  return names;
}

// Returns the index of the span-name string literal for a `Span` use
// starting at token `i` (`Span("name")` or `Span var("name")`), or npos.
// Declarations (`Span(const char* name)`), pointers (`Span* tl_active`) and
// the class definition never have a string in that slot, so they don't match.
size_t SpanNameLiteral(const std::vector<Token>& toks, size_t i) {
  if (toks[i].kind != TokKind::kIdent || toks[i].text != "Span") {
    return std::string::npos;
  }
  if (i + 2 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
      toks[i + 1].text == "(" && toks[i + 2].kind == TokKind::kString) {
    return i + 2;
  }
  if (i + 3 < toks.size() && toks[i + 1].kind == TokKind::kIdent &&
      toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == "(" &&
      toks[i + 3].kind == TokKind::kString) {
    return i + 3;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Lock discipline: a light structural pass over the token stream. Class
// bodies are parsed just far enough to bind annotated members to their
// sibling mutexes (guarded-by), EADRL_REQUIRES-annotated bodies are scanned
// for self-acquisition, and scoped-lock acquisitions are checked against the
// rank order declared in src/chk/lock_order.def. The runtime counterpart is
// chk::LockTracker (src/chk/lockdep.h).
// ---------------------------------------------------------------------------

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// `i` at the opening token; returns the index just past the matching closer
// (or toks.size() when unbalanced).
size_t SkipGroup(const std::vector<Token>& toks, size_t i, const char* open,
                 const char* close) {
  size_t depth = 0;
  for (; i < toks.size(); ++i) {
    if (IsPunct(toks[i], open)) {
      ++depth;
    } else if (IsPunct(toks[i], close) && --depth == 0) {
      return i + 1;
    }
  }
  return i;
}

// Last identifier in [begin, end): the terminal identifier of an expression
// like `shard.stripe_mu` or `policy->agent_mu` (member names are repo-unique
// for ranked mutexes, so the terminal identifier is the binding key).
std::string TerminalIdent(const std::vector<Token>& toks, size_t begin,
                          size_t end) {
  std::string last;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent) last = toks[i].text;
  }
  return last;
}

struct Acquisition {
  std::string mutex;  ///< terminal identifier of the locked expression.
  size_t line = 0;
};

// If toks[i] starts a scoped-lock construction — `lock_guard<...> g(expr)`,
// a `unique_lock<...>(expr)` temporary, `scoped_lock g(a, b)` — appends one
// Acquisition per locked argument and returns the index just past the
// closing ')'. Returns i + 1 when toks[i] starts no acquisition. A guard
// *declaration* without arguments (deferred unique_lock member) is not an
// acquisition.
size_t MatchScopedAcquisition(const std::vector<Token>& toks, size_t i,
                              std::vector<Acquisition>* out) {
  const Token& t = toks[i];
  if (t.kind != TokKind::kIdent) return i + 1;
  const bool multi = t.text == "scoped_lock";
  if (!multi && t.text != "lock_guard" && t.text != "unique_lock" &&
      t.text != "shared_lock") {
    return i + 1;
  }
  size_t j = i + 1;
  if (j < toks.size() && IsPunct(toks[j], "<")) {
    j = SkipGroup(toks, j, "<", ">");
  }
  if (j < toks.size() && toks[j].kind == TokKind::kIdent) ++j;  // guard name
  if (j >= toks.size() || !IsPunct(toks[j], "(")) return i + 1;
  const size_t past = SkipGroup(toks, j, "(", ")");
  const size_t close = past - 1;  // index of ')'
  std::vector<std::pair<size_t, size_t>> args;
  size_t depth = 0;
  size_t arg_begin = j + 1;
  for (size_t k = j + 1; k < close; ++k) {
    if (IsPunct(toks[k], "(") || IsPunct(toks[k], "{") ||
        IsPunct(toks[k], "[")) {
      ++depth;
    } else if (IsPunct(toks[k], ")") || IsPunct(toks[k], "}") ||
               IsPunct(toks[k], "]")) {
      if (depth > 0) --depth;
    } else if (IsPunct(toks[k], ",") && depth == 0) {
      args.emplace_back(arg_begin, k);
      arg_begin = k + 1;
    }
  }
  if (arg_begin < close) args.emplace_back(arg_begin, close);
  if (args.empty()) return past;
  // lock_guard/unique_lock/shared_lock take the mutex first (any further
  // args are adopt/defer tags); scoped_lock locks every argument.
  if (!multi) args.resize(1);
  for (const auto& [b, e] : args) {
    const std::string name = TerminalIdent(toks, b, e);
    if (!name.empty()) out->push_back({name, toks[b].line});
  }
  return past;
}

// --- guarded-by: minimal class-body parse --------------------------------

struct ParsedMember {
  std::string name;
  size_t line = 0;
  bool is_mutex = false;      ///< by-value std::mutex or OrderedMutex.
  bool is_container = false;  ///< by-value std:: container.
  bool has_guarded_by = false;
  std::string guarded_by;  ///< terminal identifier of the annotation arg.
  bool unguarded = false;  ///< carries the EADRL_UNGUARDED marker.
};

struct ParsedClass {
  std::string name;
  size_t line = 0;
  std::vector<ParsedMember> members;
  std::vector<ParsedClass> nested;
};

const std::set<std::string>& ContainerTypes() {
  static const std::set<std::string> kTypes = {
      "vector", "deque", "list",          "map",
      "set",    "string", "unordered_map", "unordered_set"};
  return kTypes;
}

// One class-body member statement (tokens between ';' boundaries, brace
// groups elided): record it if it declares a by-value mutex / std::
// container member or carries a guard annotation. Function declarations are
// rejected by the `(`-follows-the-name test; parameters never match because
// only paren-depth-0 tokens are considered.
void FlushMemberStatement(const std::vector<Token>& toks,
                          const std::vector<size_t>& stmt, ParsedClass* cls) {
  if (stmt.empty()) return;
  const std::string& first = toks[stmt[0]].text;
  if (first == "using" || first == "typedef" || first == "friend" ||
      first == "template" || first == "static_assert" || first == "static" ||
      first == "enum" || first == "operator") {
    return;
  }
  ParsedMember member;
  size_t anno_at = stmt.size();
  for (size_t k = 0; k < stmt.size(); ++k) {
    const Token& t = toks[stmt[k]];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "EADRL_UNGUARDED") member.unguarded = true;
    if (t.text == "EADRL_GUARDED_BY" && k + 2 < stmt.size() &&
        IsPunct(toks[stmt[k + 1]], "(")) {
      size_t depth = 1;
      size_t end = k + 2;
      while (end < stmt.size() && depth > 0) {
        if (IsPunct(toks[stmt[end]], "(")) ++depth;
        if (IsPunct(toks[stmt[end]], ")")) --depth;
        ++end;
      }
      for (size_t a = k + 2; a + 1 < end; ++a) {
        if (toks[stmt[a]].kind == TokKind::kIdent) {
          member.guarded_by = toks[stmt[a]].text;
        }
      }
      member.has_guarded_by = true;
      member.line = t.line;
      anno_at = k;
    }
  }
  size_t paren = 0;
  for (size_t k = 0; k < stmt.size(); ++k) {
    const Token& t = toks[stmt[k]];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++paren;
      if (t.text == ")" && paren > 0) --paren;
      continue;
    }
    if (paren != 0 || t.kind != TokKind::kIdent) continue;
    const bool std_qualified = k >= 3 && IsPunct(toks[stmt[k - 1]], ":") &&
                               IsPunct(toks[stmt[k - 2]], ":") &&
                               toks[stmt[k - 3]].text == "std";
    const bool is_mutex_type =
        (std_qualified && t.text == "mutex") || t.text == "OrderedMutex";
    const bool is_container_type =
        std_qualified && ContainerTypes().count(t.text) != 0;
    if (!is_mutex_type && !is_container_type) continue;
    size_t j = k + 1;
    if (j < stmt.size() && IsPunct(toks[stmt[j]], "<")) {
      size_t angle = 1;
      ++j;
      while (j < stmt.size() && angle > 0) {
        if (IsPunct(toks[stmt[j]], "<")) ++angle;
        if (IsPunct(toks[stmt[j]], ">")) --angle;
        ++j;
      }
    }
    if (j < stmt.size() &&
        (IsPunct(toks[stmt[j]], "*") || IsPunct(toks[stmt[j]], "&"))) {
      continue;  // pointer/reference: pt_guarded_by territory, not enforced.
    }
    if (j >= stmt.size() || toks[stmt[j]].kind != TokKind::kIdent) continue;
    if (j + 1 < stmt.size() && IsPunct(toks[stmt[j + 1]], "(")) {
      continue;  // function declaration returning the type.
    }
    member.name = toks[stmt[j]].text;
    member.line = toks[stmt[j]].line;
    member.is_mutex = is_mutex_type;
    member.is_container = is_container_type;
    break;
  }
  if (member.name.empty()) {
    if (!member.has_guarded_by) return;
    // Annotated non-container member (a guarded counter): keep it so the
    // named mutex is still validated. Its name is the identifier right
    // before the annotation.
    paren = 0;
    for (size_t k = 0; k < anno_at; ++k) {
      const Token& t = toks[stmt[k]];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++paren;
        if (t.text == ")" && paren > 0) --paren;
        continue;
      }
      if (paren == 0 && t.kind == TokKind::kIdent) member.name = t.text;
    }
    if (member.name.empty()) return;
  }
  cls->members.push_back(std::move(member));
}

size_t ParseClassBody(const std::vector<Token>& toks, size_t i,
                      ParsedClass* cls);

// `i` at a `class`/`struct` keyword. Parses the head (skipping attribute
// macros, `final`, template args and the base clause), then the body when
// one follows; forward declarations are consumed without output. Returns the
// index just past what was consumed.
size_t ParseClassAt(const std::vector<Token>& toks, size_t i,
                    std::vector<ParsedClass>* out) {
  const size_t line = toks[i].line;
  std::string name;
  size_t j = i + 1;
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kIdent) {
      if (j + 1 < toks.size() && IsPunct(toks[j + 1], "(")) {
        j = SkipGroup(toks, j + 1, "(", ")");  // attribute macro.
        continue;
      }
      if (t.text != "final" && t.text != "alignas") name = t.text;
      ++j;
      continue;
    }
    if (IsPunct(t, "<")) {
      j = SkipGroup(toks, j, "<", ">");
      continue;
    }
    if (IsPunct(t, ";")) return j + 1;  // forward declaration.
    if (IsPunct(t, ":")) {
      ++j;  // base clause: scan to the body's '{'.
      while (j < toks.size() && !IsPunct(toks[j], "{") &&
             !IsPunct(toks[j], ";")) {
        if (IsPunct(toks[j], "<")) {
          j = SkipGroup(toks, j, "<", ">");
          continue;
        }
        ++j;
      }
      continue;
    }
    if (IsPunct(t, "{")) {
      ParsedClass cls;
      cls.name = name.empty() ? "(anonymous)" : name;
      cls.line = line;
      j = ParseClassBody(toks, j + 1, &cls);
      out->push_back(std::move(cls));
      return j;
    }
    return j + 1;  // `struct tm* t` and other non-definitions: bail out.
  }
  return j;
}

// `i` just past the body's '{'. Splits direct members into statements,
// recurses into nested classes, elides brace groups (a brace group preceded
// by a top-level paren group is a function body and ends the statement; one
// without is a brace initializer and the statement continues to ';').
// Returns the index just past the matching '}'.
size_t ParseClassBody(const std::vector<Token>& toks, size_t i,
                      ParsedClass* cls) {
  std::vector<size_t> stmt;
  bool stmt_has_paren = false;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "}") {
        FlushMemberStatement(toks, stmt, cls);
        return i + 1;
      }
      if (t.text == ";") {
        FlushMemberStatement(toks, stmt, cls);
        stmt.clear();
        stmt_has_paren = false;
        ++i;
        continue;
      }
      if (t.text == "(") {
        const size_t end = SkipGroup(toks, i, "(", ")");
        for (size_t k = i; k < end; ++k) stmt.push_back(k);
        stmt_has_paren = true;
        i = end;
        continue;
      }
      if (t.text == "{") {
        const size_t end = SkipGroup(toks, i, "{", "}");
        if (stmt_has_paren) {
          // Function body: the statement ends here (no ';' follows).
          FlushMemberStatement(toks, stmt, cls);
          stmt.clear();
          stmt_has_paren = false;
        }
        // Otherwise a brace initializer: skip its contents, the member
        // statement continues to its ';'.
        i = end;
        continue;
      }
      stmt.push_back(i);
      ++i;
      continue;
    }
    if (t.kind == TokKind::kIdent) {
      if ((t.text == "public" || t.text == "private" ||
           t.text == "protected") &&
          i + 1 < toks.size() && IsPunct(toks[i + 1], ":")) {
        stmt.clear();
        stmt_has_paren = false;
        i += 2;
        continue;
      }
      if ((t.text == "class" || t.text == "struct") && stmt.empty()) {
        i = ParseClassAt(toks, i, &cls->nested);
        continue;
      }
    }
    stmt.push_back(i);
    ++i;
  }
  FlushMemberStatement(toks, stmt, cls);
  return i;
}

std::vector<ParsedClass> ParseClasses(const std::vector<Token>& toks) {
  std::vector<ParsedClass> out;
  size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent && (t.text == "class" || t.text == "struct")) {
      const Token* prev = i == 0 ? nullptr : &toks[i - 1];
      const bool excluded =
          prev != nullptr &&
          (prev->text == "enum" || prev->text == "friend" ||
           prev->text == "<" || prev->text == ",");
      if (!excluded) {
        i = ParseClassAt(toks, i, &out);
        continue;
      }
    }
    ++i;
  }
  return out;
}

// Nested classes see the enclosing class's mutexes (a nested Shard's members
// may be guarded by its own stripe lock or by the owner's), but the
// annotate-or-opt-out obligation only applies to classes that directly
// declare a mutex — a plain nested data holder (a queue's Task) stays free.
void EvaluateClassLockDiscipline(const ParsedClass& cls,
                                 const std::set<std::string>& enclosing,
                                 bool enforce, const std::string& path,
                                 std::vector<Finding>* findings) {
  std::set<std::string> own;
  for (const ParsedMember& m : cls.members) {
    if (m.is_mutex) own.insert(m.name);
  }
  std::set<std::string> visible = enclosing;
  visible.insert(own.begin(), own.end());
  for (const ParsedMember& m : cls.members) {
    if (m.has_guarded_by && visible.count(m.guarded_by) == 0) {
      findings->push_back(
          {path, m.line, "guarded-by",
           "EADRL_GUARDED_BY(" + m.guarded_by + ") on '" + m.name +
               "' names no mutex member of '" + cls.name +
               "' or an enclosing class"});
    }
    if (enforce && m.is_container && !own.empty() && !m.has_guarded_by &&
        !m.unguarded) {
      findings->push_back(
          {path, m.line, "guarded-by",
           "container member '" + m.name + "' of mutex-bearing '" + cls.name +
               "' needs EADRL_GUARDED_BY(<mutex>) or an explicit "
               "EADRL_UNGUARDED"});
    }
  }
  for (const ParsedClass& nested : cls.nested) {
    EvaluateClassLockDiscipline(nested, visible, enforce, path, findings);
  }
}

// --- requires-self-lock ---------------------------------------------------

void CheckRequiresSelfLock(const std::string& path,
                           const std::vector<Token>& toks,
                           std::vector<Finding>* findings) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        toks[i].text != "EADRL_REQUIRES" || !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    const size_t past_args = SkipGroup(toks, i + 1, "(", ")");
    std::set<std::string> required;
    size_t depth = 0;
    size_t arg_begin = i + 2;
    for (size_t k = i + 2; k + 1 < past_args; ++k) {
      if (IsPunct(toks[k], "(")) ++depth;
      if (IsPunct(toks[k], ")") && depth > 0) --depth;
      if (IsPunct(toks[k], ",") && depth == 0) {
        required.insert(TerminalIdent(toks, arg_begin, k));
        arg_begin = k + 1;
      }
    }
    if (arg_begin + 1 <= past_args) {
      const std::string last = TerminalIdent(toks, arg_begin, past_args - 1);
      if (!last.empty()) required.insert(last);
    }
    if (required.empty()) continue;
    // Find the body, when this declaration defines one in the same file:
    // skip trailing `const`/`override`/`noexcept` and further annotation
    // macros; a ';' (or anything else) means declaration-only.
    size_t j = past_args;
    while (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      if (j + 1 < toks.size() && IsPunct(toks[j + 1], "(")) {
        j = SkipGroup(toks, j + 1, "(", ")");
      } else {
        ++j;
      }
    }
    if (j >= toks.size() || !IsPunct(toks[j], "{")) continue;
    const size_t body_end = SkipGroup(toks, j, "{", "}");
    for (size_t k = j + 1; k + 1 < body_end; ++k) {
      std::vector<Acquisition> acqs;
      const size_t adv = MatchScopedAcquisition(toks, k, &acqs);
      for (const Acquisition& a : acqs) {
        if (required.count(a.mutex) != 0) {
          findings->push_back(
              {path, a.line, "requires-self-lock",
               "acquires '" + a.mutex + "' inside a function annotated "
               "EADRL_REQUIRES(" + a.mutex + "); the caller already holds "
               "it — locking again self-deadlocks"});
        }
      }
      if (adv > k + 1) {
        k = adv - 1;
        continue;
      }
      if (toks[k].kind == TokKind::kIdent &&
          (toks[k].text == "lock" || toks[k].text == "try_lock") &&
          k + 1 < body_end && IsPunct(toks[k + 1], "(") && k >= 2 &&
          IsPunct(toks[k - 1], ".") &&
          toks[k - 2].kind == TokKind::kIdent &&
          required.count(toks[k - 2].text) != 0) {
        findings->push_back(
            {path, toks[k].line, "requires-self-lock",
             "calls '" + toks[k - 2].text + "." + toks[k].text +
                 "()' inside a function annotated EADRL_REQUIRES(" +
                 toks[k - 2].text + "); the caller already holds it"});
      }
    }
  }
}

// --- lock-registry: rank names at binding sites ---------------------------

void CheckLockRankNames(const std::string& path,
                        const std::vector<Token>& toks, const Config& config,
                        std::vector<Finding>* findings) {
  if (!config.have_lock_registry) return;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "EADRL_LOCK_RANK" &&
         toks[i].text != "EADRL_LOCK_ORDERED") ||
        !IsPunct(toks[i + 1], "(") || toks[i + 2].kind != TokKind::kIdent) {
      continue;
    }
    const Token& rank = toks[i + 2];
    if (config.registered_locks.count(rank.text) == 0) {
      findings->push_back({path, rank.line, "lock-registry",
                           toks[i].text + " names rank '" + rank.text +
                               "' which src/chk/lock_order.def does not "
                               "declare"});
    }
  }
}

// --- lock-order: scoped acquisitions vs. the declared rank order ----------

void CheckLockOrderRule(const std::string& path,
                        const std::vector<Token>& toks, const Config& config,
                        std::vector<Finding>* findings) {
  if (!config.have_lock_registry || config.lock_bindings.empty()) return;
  std::map<std::string, size_t> rank_index;
  for (size_t r = 0; r < config.lock_order.size(); ++r) {
    rank_index.emplace(config.lock_order[r], r);
  }
  struct Held {
    std::string name;
    std::string rank;
    size_t index;
    size_t line;
    size_t depth;
  };
  std::vector<Held> held;
  size_t depth = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}") {
        if (depth > 0) --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    std::vector<Acquisition> acqs;
    const size_t adv = MatchScopedAcquisition(toks, i, &acqs);
    for (const Acquisition& a : acqs) {
      const auto bound = config.lock_bindings.find(a.mutex);
      if (bound == config.lock_bindings.end()) continue;  // unranked mutex.
      const auto idx = rank_index.find(bound->second);
      if (idx == rank_index.end()) continue;  // flagged by lock-registry.
      for (const Held& h : held) {
        // Same rank may nest (stripes, sessions) — the runtime tracker
        // enforces ascending address order there.
        if (h.index > idx->second) {
          findings->push_back(
              {path, a.line, "lock-order",
               "acquires '" + a.mutex + "' (rank " + bound->second +
                   ") while holding '" + h.name + "' (rank " + h.rank +
                   ", acquired line " + std::to_string(h.line) +
                   "); src/chk/lock_order.def declares " + bound->second +
                   " above " + h.rank +
                   " — release first, or fix the registry order"});
        }
      }
      held.push_back({a.mutex, bound->second, idx->second, a.line, depth});
    }
    if (adv > i + 1) i = adv - 1;
  }
}

}  // namespace

std::map<std::string, size_t> ParseEventsDef(const std::string& path,
                                             const std::string& contents,
                                             std::vector<Finding>* findings) {
  return ParseRegistryDef("EADRL_EVENT", "event-registry", path, contents,
                          findings);
}

std::map<std::string, size_t> ParseSpansDef(const std::string& path,
                                            const std::string& contents,
                                            std::vector<Finding>* findings) {
  return ParseRegistryDef("EADRL_SPAN", "span-registry", path, contents,
                          findings);
}

std::map<std::string, size_t> ParseLockOrderDef(
    const std::string& path, const std::string& contents,
    std::vector<Finding>* findings, std::vector<std::string>* order) {
  return ParseRegistryDef("EADRL_LOCK", "lock-registry", path, contents,
                          findings, order);
}

std::vector<LockBindingSite> CollectLockBindings(const std::string& contents) {
  std::vector<LockBindingSite> out;
  LexedFile lexed = Lexer(contents).Run();
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    // chk::OrderedMutex name{EADRL_LOCK_RANK(rank), "site"} — brace or paren
    // initializer, the rank macro first.
    if (toks[i].text == "OrderedMutex" && toks[i + 1].kind == TokKind::kIdent &&
        i + 5 < toks.size() &&
        (IsPunct(toks[i + 2], "{") || IsPunct(toks[i + 2], "(")) &&
        toks[i + 3].text == "EADRL_LOCK_RANK" && IsPunct(toks[i + 4], "(") &&
        toks[i + 5].kind == TokKind::kIdent) {
      out.push_back({toks[i + 1].text, toks[i + 5].text, toks[i + 1].line});
    }
    // std::mutex name EADRL_LOCK_ORDERED(rank) — a plain mutex bound to a
    // rank for the static walk only (no OrderedMutex conversion).
    if (toks[i].text == "mutex" && toks[i + 1].kind == TokKind::kIdent &&
        i + 4 < toks.size() && toks[i + 2].text == "EADRL_LOCK_ORDERED" &&
        IsPunct(toks[i + 3], "(") && toks[i + 4].kind == TokKind::kIdent) {
      out.push_back({toks[i + 1].text, toks[i + 4].text, toks[i + 1].line});
    }
  }
  return out;
}

std::set<std::string> EmittedEvents(const std::string& contents) {
  std::set<std::string> kinds;
  LexedFile lexed = Lexer(contents).Run();
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "EADRL_TELEMETRY" && toks[i].text != "Emit")) {
      continue;
    }
    if (toks[i + 1].text == "(" && toks[i + 2].kind == TokKind::kString) {
      kinds.insert(toks[i + 2].text);
    }
  }
  return kinds;
}

std::set<std::string> UsedSpans(const std::string& contents) {
  std::set<std::string> names;
  LexedFile lexed = Lexer(contents).Run();
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const size_t lit = SpanNameLiteral(toks, i);
    if (lit != std::string::npos) names.insert(toks[lit].text);
  }
  return names;
}

std::vector<Finding> CheckFile(const std::string& path,
                               const std::string& contents,
                               const Config& config) {
  std::vector<Finding> findings;
  LexedFile lexed = Lexer(contents).Run();
  const std::vector<Token>& toks = lexed.tokens;

  const bool in_src = StartsWith(path, "src/");
  // tools/ binaries share src/'s span namespace (their spans land in the
  // same profiler and traces), so the registry covers them too. Tests,
  // benchmarks and examples stay exempt.
  const bool in_tools = StartsWith(path, "tools/");
  const bool is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  // The logging/check/chk backends are the one place stdio is the product.
  const bool io_backend = in_src && (StartsWith(path, "src/common/") ||
                                     StartsWith(path, "src/chk/"));
  const bool clock_owner = StartsWith(path, "src/common/") ||
                           StartsWith(path, "src/obs/");

  auto Prev = [&toks](size_t i) -> const Token* {
    return i == 0 ? nullptr : &toks[i - 1];
  };
  auto Next = [&toks](size_t i) -> const Token* {
    return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const Token* next = Next(i);
    const Token* prev = Prev(i);
    const bool calls = next != nullptr && next->kind == TokKind::kPunct &&
                       next->text == "(";
    // Member access (x.rand(), x->time()) is someone else's API, not libc.
    const bool member =
        prev != nullptr && prev->kind == TokKind::kPunct &&
        (prev->text == "." || prev->text == ">" /* -> lexes as '-','>' */);

    if ((t.text == "rand" || t.text == "srand") && calls && !member) {
      findings.push_back({path, t.line, "banned-rand",
                          t.text + "() is banned: seedable-but-global PRNGs "
                          "break determinism; use eadrl::common::Rng"});
    }
    if (in_src && !io_backend) {
      if (t.text == "cout" || t.text == "cerr") {
        findings.push_back({path, t.line, "banned-io",
                            "std::" + t.text + " in src/; use EADRL_LOG or "
                            "the obs subsystem"});
      }
      if ((t.text == "printf" || t.text == "puts") && calls && !member) {
        findings.push_back({path, t.line, "banned-io",
                            t.text + "() in src/; use EADRL_LOG or the obs "
                            "subsystem"});
      }
    }
    if (in_src && t.text == "new") {
      findings.push_back({path, t.line, "naked-new",
                          "naked new; use std::make_unique / containers "
                          "(NOLINT(naked-new) for intentional-leak "
                          "singletons)"});
    }
    if (in_src && t.text == "delete") {
      const bool deleted_fn = prev != nullptr && prev->text == "=";
      const bool op_overload = prev != nullptr && prev->text == "operator";
      if (!deleted_fn && !op_overload) {
        findings.push_back({path, t.line, "naked-delete",
                            "naked delete; ownership belongs to smart "
                            "pointers"});
      }
    }
    if (in_src && !clock_owner) {
      if (t.text == "system_clock" || t.text == "gmtime" ||
          t.text == "localtime" || t.text == "strftime" || t.text == "ctime" ||
          (t.text == "time" && calls && !member)) {
        findings.push_back({path, t.line, "wall-clock",
                            "wall-clock read in domain code; call "
                            "common::UnixNowSeconds (src/common, src/obs own "
                            "the clock; steady_clock is fine for durations)"});
      }
    }
    // Telemetry event kinds: EADRL_TELEMETRY("kind", ...) / Emit("kind", ...)
    if (in_src && config.have_events_registry &&
        (t.text == "EADRL_TELEMETRY" || t.text == "Emit") && calls &&
        i + 2 < toks.size() && toks[i + 2].kind == TokKind::kString) {
      const Token& kind = toks[i + 2];
      if (config.registered_events.count(kind.text) == 0) {
        findings.push_back({path, kind.line, "event-registry",
                            "telemetry event '" + kind.text +
                                "' is not declared in src/obs/events.def"});
      }
    }
    // Materialized-transpose products: Transpose().MatMul(...) copies the
    // whole matrix just to feed a GEMM the fused kernels compute in place.
    // Hot-path (src/) only — tests and benches legitimately use the chain as
    // the reference the fused kernels are compared against.
    if (in_src && t.text == "Transpose" && calls && i + 4 < toks.size() &&
        toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == ")" &&
        toks[i + 3].kind == TokKind::kPunct && toks[i + 3].text == "." &&
        toks[i + 4].kind == TokKind::kIdent &&
        (toks[i + 4].text == "MatMul" || toks[i + 4].text == "MatVec")) {
      findings.push_back(
          {path, t.line, "transpose-matmul",
           "Transpose()." + toks[i + 4].text + " materializes the transpose; "
           "use " + (toks[i + 4].text == "MatMul"
                         ? std::string("MatMulTransposeA/B")
                         : std::string("TransposeMatVec")) +
               " instead"});
    }
    // Trace span names: Span("name") / Span var("name") constructions.
    if ((in_src || in_tools) && config.have_spans_registry) {
      const size_t lit = SpanNameLiteral(toks, i);
      if (lit != std::string::npos &&
          config.registered_spans.count(toks[lit].text) == 0) {
        findings.push_back({path, toks[lit].line, "span-registry",
                            "trace span '" + toks[lit].text +
                                "' is not declared in src/obs/spans.def"});
      }
    }
  }

  // --- Include rules -------------------------------------------------------
  struct Include {
    std::string target;
    size_t line;
    bool angled;
  };
  std::vector<Include> includes;
  for (const Directive& d : lexed.directives) {
    std::string target;
    bool angled = false;
    if (!ParseIncludeTarget(d.text, &target, &angled)) continue;
    includes.push_back({target, d.line, angled});
    if (StartsWith(target, "bits/")) {
      findings.push_back({path, d.line, "include-bits",
                          "#include <" + target + "> is libstdc++-internal; "
                          "include the standard header instead"});
    }
  }
  if (!is_header && EndsWith(path, ".cc")) {
    // If this .cc includes a header with its own basename, that include must
    // come first (proves the header is self-contained).
    const std::string self_header =
        Basename(path).substr(0, Basename(path).size() - 3) + ".h";
    for (size_t i = 1; i < includes.size(); ++i) {
      // Angled includes are never the self header — <sys/resource.h> is not
      // src/obs/resource.h even though the basenames collide.
      if (!includes[i].angled && Basename(includes[i].target) == self_header) {
        findings.push_back({path, includes[i].line, "include-self-first",
                            "self header \"" + includes[i].target +
                                "\" must be the first include"});
      }
    }
  }

  // --- Header guards -------------------------------------------------------
  if (is_header) {
    const std::string want = CanonicalGuard(path);
    bool guard_ok = false;
    for (const Directive& d : lexed.directives) {
      if (StartsWith(d.text, "pragma") &&
          d.text.find("once") != std::string::npos) {
        findings.push_back({path, d.line, "header-guard",
                            "#pragma once; this tree uses include guards (" +
                                want + ")"});
      }
    }
    if (lexed.directives.size() >= 2 &&
        lexed.directives[0].text == "ifndef " + want &&
        StartsWith(lexed.directives[1].text, "define " + want)) {
      guard_ok = true;
    }
    if (!guard_ok) {
      findings.push_back({path, 1, "header-guard",
                          "missing or non-canonical include guard; want "
                          "#ifndef " + want + " / #define " + want});
    }
  }

  // --- Task-marker tags (todo-tag) -----------------------------------------
  for (const auto& [line, text] : lexed.comments) {
    for (const char* marker : {"TODO", "FIXME"}) {
      size_t at = 0;
      while ((at = text.find(marker, at)) != std::string::npos) {
        const size_t after = at + std::string(marker).size();
        // Skip substrings of longer words in either direction.
        if ((at > 0 && IsIdentChar(text[at - 1])) ||
            (after < text.size() && IsIdentChar(text[after]))) {
          at = after;
          continue;
        }
        const bool tagged = after < text.size() && text[after] == '(' &&
                            text.find(')', after) != std::string::npos &&
                            text.find(')', after) > after + 1;
        if (!tagged) {
          findings.push_back({path, line, "todo-tag",
                              std::string(marker) +
                                  " without an owner/issue tag; write " +
                                  marker + "(name-or-issue): ..."});
        }
        at = after;
      }
    }
  }

  // --- Lock discipline -----------------------------------------------------
  if (in_src) {
    // Annotation validation runs across src/; the annotate-or-opt-out
    // obligation for container members applies to the concurrent subsystems.
    const bool enforce_guards =
        StartsWith(path, "src/serve/") || StartsWith(path, "src/par/") ||
        StartsWith(path, "src/obs/") || StartsWith(path, "src/core/");
    for (const ParsedClass& cls : ParseClasses(toks)) {
      EvaluateClassLockDiscipline(cls, {}, enforce_guards, path, &findings);
    }
    CheckRequiresSelfLock(path, toks, &findings);
    CheckLockRankNames(path, toks, config, &findings);
    CheckLockOrderRule(path, toks, config, &findings);
  }

  // --- Apply NOLINT suppressions, flag stale ones --------------------------
  std::vector<Suppression> suppressions =
      ParseSuppressions(lexed.comments, &findings, path);
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.line == f.line && s.rule == f.rule) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  for (const Suppression& s : suppressions) {
    if (s.used) continue;
    if (RuleCatalog().count(s.rule) == 0) {
      kept.push_back({path, s.line, "stale-nolint",
                      "NOLINT(" + s.rule + ") names an unknown rule-id"});
    } else {
      kept.push_back({path, s.line, "stale-nolint",
                      "NOLINT(" + s.rule + ") no longer suppresses anything; "
                      "remove it"});
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return kept;
}

std::vector<Finding> CheckRegistryStaleness(
    const std::string& events_def_path, const Config& config,
    const std::set<std::string>& emitted_in_src) {
  std::vector<Finding> findings;
  for (const auto& [name, line] : config.registered_events) {
    if (emitted_in_src.count(name) == 0) {
      findings.push_back({events_def_path, line, "event-registry-stale",
                          "registered event '" + name +
                              "' is emitted nowhere under src/; delete the "
                              "entry or restore the emitter"});
    }
  }
  return findings;
}

std::vector<Finding> CheckSpanRegistryStaleness(
    const std::string& spans_def_path, const Config& config,
    const std::set<std::string>& used_in_src) {
  std::vector<Finding> findings;
  for (const auto& [name, line] : config.registered_spans) {
    if (used_in_src.count(name) == 0) {
      findings.push_back({spans_def_path, line, "span-registry-stale",
                          "registered span '" + name +
                              "' is opened nowhere under src/ or tools/; "
                              "delete the entry or restore the span"});
    }
  }
  return findings;
}

std::vector<Finding> CheckLockRegistryStaleness(
    const std::string& locks_def_path, const Config& config,
    const std::set<std::string>& bound_in_src) {
  std::vector<Finding> findings;
  for (const auto& [name, line] : config.registered_locks) {
    if (bound_in_src.count(name) == 0) {
      findings.push_back({locks_def_path, line, "lock-registry-stale",
                          "registered lock rank '" + name +
                              "' is bound by no mutex under src/; delete the "
                              "entry or restore the binding"});
    }
  }
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream os;
  os << finding.file << ':' << finding.line << ": " << finding.rule << ": "
     << finding.message;
  return os.str();
}

std::string FormatFindingJson(const Finding& finding) {
  std::string out = "{\"file\":\"";
  AppendJsonEscaped(&out, finding.file);
  out += "\",\"line\":";
  out += std::to_string(finding.line);
  out += ",\"rule\":\"";
  AppendJsonEscaped(&out, finding.rule);
  out += "\",\"message\":\"";
  AppendJsonEscaped(&out, finding.message);
  out += "\"}";
  return out;
}

}  // namespace eadrl::lint
