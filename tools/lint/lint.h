#ifndef EADRL_TOOLS_LINT_LINT_H_
#define EADRL_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

// eadrl_lint — the project's own static analyzer (see DESIGN.md,
// "Correctness tooling"). Dependency-free: a hand-rolled C++ lexer feeds a
// fixed set of project rules; no compiler, no external tooling. The library
// half lives here so tests/lint_selftest.cc can drive every rule against
// checked-in fixtures; tools/lint/eadrl_lint.cc wraps it in a directory
// walker with `file:line: rule-id: message` output and a nonzero exit on any
// finding.

namespace eadrl::lint {

/// One diagnostic. `line` is 1-based; `rule` is a stable rule-id from
/// RuleCatalog().
struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// Rule-id -> one-line description of every rule this linter can emit
/// (including the meta rules `event-registry-stale` and `stale-nolint`).
const std::map<std::string, std::string>& RuleCatalog();

/// Cross-file configuration.
struct Config {
  /// Event kinds declared in src/obs/events.def (name -> 1-based line in the
  /// registry file). Empty + !have_events_registry disables the
  /// event-registry rules.
  std::map<std::string, size_t> registered_events;
  bool have_events_registry = false;
  /// Span names declared in src/obs/spans.def (name -> 1-based line in the
  /// registry file). Empty + !have_spans_registry disables the span-registry
  /// rules.
  std::map<std::string, size_t> registered_spans;
  bool have_spans_registry = false;
  /// Lock ranks declared in src/chk/lock_order.def (name -> 1-based line in
  /// the registry file) and the same names in declaration order — file order
  /// is the allowed acquisition order. Empty + !have_lock_registry disables
  /// the lock rules.
  std::map<std::string, size_t> registered_locks;
  std::vector<std::string> lock_order;
  bool have_lock_registry = false;
  /// Repo-global mutex-member-name -> rank-name map, built by the driver
  /// from CollectLockBindings over every src/ file. The lock-order rule
  /// matches scoped acquisitions by terminal identifier against this map,
  /// which is why ranked mutex members must carry repo-unique names.
  std::map<std::string, std::string> lock_bindings;
};

/// Parses src/obs/events.def: EADRL_EVENT(name, "description") entries.
/// Malformed entries are reported against `path`.
std::map<std::string, size_t> ParseEventsDef(const std::string& path,
                                             const std::string& contents,
                                             std::vector<Finding>* findings);

/// Parses src/obs/spans.def: EADRL_SPAN(name, "description") entries.
/// Malformed entries are reported against `path`.
std::map<std::string, size_t> ParseSpansDef(const std::string& path,
                                            const std::string& contents,
                                            std::vector<Finding>* findings);

/// Parses src/chk/lock_order.def: EADRL_LOCK(name, "description") entries.
/// Malformed and duplicate entries are reported against `path` under
/// `lock-registry`. `order` (optional) receives the names in declaration
/// order — file order is the allowed acquisition order.
std::map<std::string, size_t> ParseLockOrderDef(
    const std::string& path, const std::string& contents,
    std::vector<Finding>* findings, std::vector<std::string>* order);

/// One site binding a mutex member name to a lock rank: either
/// `chk::OrderedMutex name{EADRL_LOCK_RANK(rank), ...}` or
/// `std::mutex name EADRL_LOCK_ORDERED(rank)`.
struct LockBindingSite {
  std::string name;  ///< mutex member name.
  std::string rank;  ///< rank name (validated against the registry later).
  size_t line = 0;
};

/// Every rank-binding site in one file, in token order. The driver merges
/// these into Config::lock_bindings, flagging (under `lock-registry`) names
/// bound to two different ranks and ranks the registry does not declare.
std::vector<LockBindingSite> CollectLockBindings(const std::string& contents);

/// Runs every per-file rule on one source file. `repo_relative_path` selects
/// the scope-sensitive rules (IO/new/wall-clock bans apply under src/ only;
/// header-guard canonicalization strips the leading src/). `// NOLINT(id)`
/// and `// NOLINT(id1,id2)` on the finding's line suppress it; a NOLINT that
/// suppresses nothing is itself reported as `stale-nolint`.
std::vector<Finding> CheckFile(const std::string& repo_relative_path,
                               const std::string& contents,
                               const Config& config);

/// Event kinds emitted by this file via EADRL_TELEMETRY("...")/Emit("...").
/// Used for the registry-staleness pass, which needs the union over src/.
std::set<std::string> EmittedEvents(const std::string& contents);

/// Span names this file opens via `Span("name")` / `Span x("name")`.
/// Used for the span-registry staleness pass over src/.
std::set<std::string> UsedSpans(const std::string& contents);

/// Registry entries nothing in src/ emits any more (`event-registry-stale`,
/// reported against the registry file).
std::vector<Finding> CheckRegistryStaleness(
    const std::string& events_def_path, const Config& config,
    const std::set<std::string>& emitted_in_src);

/// spans.def entries nothing in src/ opens any more (`span-registry-stale`,
/// reported against the registry file).
std::vector<Finding> CheckSpanRegistryStaleness(
    const std::string& spans_def_path, const Config& config,
    const std::set<std::string>& used_in_src);

/// lock_order.def entries no mutex in src/ binds any more
/// (`lock-registry-stale`, reported against the registry file).
std::vector<Finding> CheckLockRegistryStaleness(
    const std::string& locks_def_path, const Config& config,
    const std::set<std::string>& bound_in_src);

/// "file:line: rule-id: message" (the gate's output format).
std::string FormatFinding(const Finding& finding);

/// One finding as a JSON object: {"file":...,"line":N,"rule":...,
/// "message":...} — the `--format=json` record shape.
std::string FormatFindingJson(const Finding& finding);

}  // namespace eadrl::lint

#endif  // EADRL_TOOLS_LINT_LINT_H_
