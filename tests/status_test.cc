#include "common/status.h"

#include <gtest/gtest.h>

namespace eadrl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ResourceExhaustedFormatsItsCodeName) {
  // The serving layer's shed signal: callers match on the code, operators
  // grep logs for the name.
  Status s = Status::ResourceExhausted("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("RESOURCE_EXHAUSTED"), std::string::npos);
  EXPECT_NE(s.ToString().find("queue full"), std::string::npos);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("inner failed");
  return Status::Ok();
}

Status Outer(bool fail) {
  EADRL_RETURN_IF_ERROR(Inner(fail));
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  Status s = Outer(true);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "inner failed");
}

}  // namespace
}  // namespace eadrl
