// Sliding-window metrics (src/obs/window.h): rotation at tick boundaries
// under an injected fake clock, full-window expiry, early-window rate
// normalization, the exact-when-small quantile path (parity against a
// sorted-vector order-statistic reference), snapshot merging, and the
// windowed kinds of MetricRegistry with their exporter renderings.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/window.h"

namespace eadrl::obs {
namespace {

// Injected clock: tests move time explicitly; WindowOptions::now_ns is a
// plain function pointer, so the seam is a process-global.
std::atomic<uint64_t> g_now_ns{0};

uint64_t FakeNow() { return g_now_ns.load(std::memory_order_relaxed); }

void SetNowSeconds(double seconds) {
  g_now_ns.store(static_cast<uint64_t>(seconds * 1e9),
                 std::memory_order_relaxed);
}

WindowOptions FakeWindow(size_t buckets, double tick_seconds) {
  WindowOptions options;
  options.buckets = buckets;
  options.tick_seconds = tick_seconds;
  options.now_ns = &FakeNow;
  return options;
}

/// Exact linearly-interpolated order statistic over `values` — the reference
/// the exact-quantile path must match.
double ReferenceQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

// ---------------------------------------------------------------------------
// WindowedCounter.
// ---------------------------------------------------------------------------

TEST(WindowedCounterTest, RotatesAtTickBoundaries) {
  SetNowSeconds(0.0);
  WindowedCounter counter(FakeWindow(4, 1.0));

  SetNowSeconds(0.5);
  counter.Inc(5.0);
  WindowedCounterSnapshot snap = counter.Snapshot();
  EXPECT_DOUBLE_EQ(snap.total, 5.0);
  EXPECT_DOUBLE_EQ(snap.cumulative, 5.0);
  // Only the first sub-window is resident: the rate reflects 1 tick, not 4.
  EXPECT_DOUBLE_EQ(snap.window_seconds, 1.0);
  EXPECT_DOUBLE_EQ(snap.Rate(), 5.0);

  SetNowSeconds(1.5);  // epoch 1: a new sub-window opens, epoch 0 stays live.
  counter.Inc(3.0);
  snap = counter.Snapshot();
  EXPECT_DOUBLE_EQ(snap.total, 8.0);
  EXPECT_DOUBLE_EQ(snap.window_seconds, 2.0);

  // Advance to epoch 4: the window covers epochs 1..4, so epoch 0's 5.0
  // slides out while the cumulative total keeps it.
  SetNowSeconds(4.25);
  snap = counter.Snapshot();
  EXPECT_DOUBLE_EQ(snap.total, 3.0);
  EXPECT_DOUBLE_EQ(snap.cumulative, 8.0);
  EXPECT_DOUBLE_EQ(snap.window_seconds, 4.0);
}

TEST(WindowedCounterTest, WholeWindowExpiresAfterQuietSpell) {
  SetNowSeconds(0.0);
  WindowedCounter counter(FakeWindow(4, 1.0));
  counter.Inc(10.0);
  // A gap of >= buckets ticks invalidates every slot at once (the full-reset
  // rotation path), even though no Inc arrived to trigger rotation.
  SetNowSeconds(100.0);
  const WindowedCounterSnapshot snap = counter.Snapshot();
  EXPECT_DOUBLE_EQ(snap.total, 0.0);
  EXPECT_DOUBLE_EQ(snap.cumulative, 10.0);
  EXPECT_DOUBLE_EQ(snap.window_seconds, 4.0);
}

TEST(WindowedCounterTest, SubSecondTicks) {
  SetNowSeconds(0.0);
  WindowedCounter counter(FakeWindow(10, 0.1));
  for (int i = 0; i < 8; ++i) {
    SetNowSeconds(0.1 * i);
    counter.Inc();
  }
  const WindowedCounterSnapshot snap = counter.Snapshot();
  EXPECT_DOUBLE_EQ(snap.total, 8.0);
  EXPECT_NEAR(snap.window_seconds, 0.8, 1e-9);
  EXPECT_NEAR(snap.Rate(), 10.0, 1e-6);
}

// ---------------------------------------------------------------------------
// WindowedHistogram.
// ---------------------------------------------------------------------------

TEST(WindowedHistogramTest, ExactQuantilesWhenSmall) {
  SetNowSeconds(0.0);
  WindowedHistogram hist(FakeWindow(5, 1.0), {});
  eadrl::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) {
    // Spread across 3 sub-windows so the exact path must stitch slots.
    SetNowSeconds(static_cast<double>(i % 3));
    const double v = rng.Uniform() * 0.25;
    values.push_back(v);
    hist.Observe(v);
  }
  SetNowSeconds(2.5);
  const WindowedHistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.values.count, 40u);
  ASSERT_EQ(snap.values.samples.size(), 40u);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.values.Quantile(q), ReferenceQuantile(values, q))
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.values.min,
                   *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(snap.values.max,
                   *std::max_element(values.begin(), values.end()));
}

TEST(WindowedHistogramTest, FallsBackToBucketsPastSampleBudget) {
  SetNowSeconds(0.0);
  WindowedHistogram hist(FakeWindow(5, 1.0), {});
  eadrl::Rng rng(11);
  double mn = 1e300;
  double mx = -1e300;
  for (int i = 0; i < 700; ++i) {
    const double v = 1e-4 + rng.Uniform() * 0.1;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    hist.Observe(v);
  }
  const WindowedHistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.values.count, 700u);
  EXPECT_TRUE(snap.values.samples.empty());
  const double p50 = snap.values.Quantile(0.5);
  EXPECT_GE(p50, mn);
  EXPECT_LE(p50, mx);
  EXPECT_EQ(hist.CumulativeCount(), 700u);
}

TEST(WindowedHistogramTest, WindowSlidesPastOldObservations) {
  SetNowSeconds(0.0);
  WindowedHistogram hist(FakeWindow(3, 1.0), {});
  hist.Observe(1.0);
  hist.Observe(2.0);
  SetNowSeconds(1.5);
  hist.Observe(8.0);
  WindowedHistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.values.count, 3u);

  SetNowSeconds(3.5);  // window = epochs 1..3: the two epoch-0 values expire.
  snap = hist.Snapshot();
  ASSERT_EQ(snap.values.count, 1u);
  EXPECT_DOUBLE_EQ(snap.values.min, 8.0);
  EXPECT_DOUBLE_EQ(snap.values.max, 8.0);
  EXPECT_EQ(hist.CumulativeCount(), 3u);

  SetNowSeconds(50.0);  // everything expires.
  snap = hist.Snapshot();
  EXPECT_EQ(snap.values.count, 0u);
  EXPECT_TRUE(snap.values.samples.empty());
}

// ---------------------------------------------------------------------------
// HistogramSnapshot: the exact-small path and merge algebra.
// ---------------------------------------------------------------------------

TEST(HistogramSnapshotTest, PlainHistogramExactSmallParity) {
  Histogram hist(Histogram::DefaultLatencyBounds());
  eadrl::Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Uniform() * 2.0;
    values.push_back(v);
    hist.Observe(v);
  }
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.samples.size(), 100u);
  for (const double q : {0.0, 0.1, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.Quantile(q), ReferenceQuantile(values, q))
        << "q=" << q;
  }
}

TEST(HistogramSnapshotTest, MergeIsAssociativeOnDerivedStats) {
  eadrl::Rng rng(19);
  // Histogram holds atomics (no move), so three named instances.
  const std::vector<double> bounds = Histogram::ExponentialBounds(0.01, 2.0, 12);
  Histogram ha(bounds);
  Histogram hb(bounds);
  Histogram hc(bounds);
  Histogram* hists[] = {&ha, &hb, &hc};
  std::vector<double> all;
  for (int h = 0; h < 3; ++h) {
    for (int i = 0; i < 30; ++i) {
      const double v = rng.Uniform() * (h + 1);
      all.push_back(v);
      hists[h]->Observe(v);
    }
  }
  const HistogramSnapshot a = ha.Snapshot();
  const HistogramSnapshot b = hb.Snapshot();
  const HistogramSnapshot c = hc.Snapshot();

  HistogramSnapshot ab_c = a;
  ab_c.MergeFrom(b);
  ab_c.MergeFrom(c);

  HistogramSnapshot bc = b;
  bc.MergeFrom(c);
  HistogramSnapshot a_bc = a;
  a_bc.MergeFrom(bc);

  // 90 observations fit the exact budget, so both merge orders must agree
  // exactly with the pooled reference on every derived statistic.
  for (HistogramSnapshot* m : {&ab_c, &a_bc}) {
    EXPECT_EQ(m->count, 90u);
    ASSERT_EQ(m->samples.size(), 90u);
    EXPECT_DOUBLE_EQ(m->min, *std::min_element(all.begin(), all.end()));
    EXPECT_DOUBLE_EQ(m->max, *std::max_element(all.begin(), all.end()));
    for (const double q : {0.1, 0.5, 0.99}) {
      EXPECT_DOUBLE_EQ(m->Quantile(q), ReferenceQuantile(all, q));
    }
  }
  EXPECT_DOUBLE_EQ(ab_c.sum, a_bc.sum);
}

TEST(HistogramSnapshotTest, MergePastBudgetDropsSamplesKeepsTotals) {
  const std::vector<double> bounds = Histogram::ExponentialBounds(0.001, 2.0, 12);
  Histogram h1(bounds);
  Histogram h2(bounds);
  for (int i = 0; i < 200; ++i) h1.Observe(0.001 * (i + 1));
  for (int i = 0; i < 200; ++i) h2.Observe(0.002 * (i + 1));
  HistogramSnapshot merged = h1.Snapshot();
  merged.MergeFrom(h2.Snapshot());
  EXPECT_EQ(merged.count, 400u);
  EXPECT_TRUE(merged.samples.empty());  // 400 > kExactQuantileSamples.
  EXPECT_NEAR(merged.sum, 0.001 * 200 * 201 / 2 + 0.002 * 200 * 201 / 2,
              1e-9);
  EXPECT_DOUBLE_EQ(merged.min, 0.001);
  EXPECT_DOUBLE_EQ(merged.max, 0.4);
}

// ---------------------------------------------------------------------------
// MetricRegistry windowed kinds.
// ---------------------------------------------------------------------------

TEST(MetricRegistryWindowedTest, StablePointersAndRenderings) {
  SetNowSeconds(0.0);
  MetricRegistry registry;
  const WindowOptions window = FakeWindow(4, 1.0);
  WindowedCounter* wc = registry.GetWindowedCounter("demo_requests", window);
  WindowedHistogram* wh =
      registry.GetWindowedHistogram("demo_latency_seconds", window);
  ASSERT_NE(wc, nullptr);
  ASSERT_NE(wh, nullptr);
  // First registration wins; later lookups return the same instance.
  EXPECT_EQ(registry.GetWindowedCounter("demo_requests", FakeWindow(99, 9.0)),
            wc);
  EXPECT_EQ(registry.GetWindowedHistogram("demo_latency_seconds", window), wh);

  wc->Inc(3.0);
  wh->Observe(0.002);
  wh->Observe(0.004);

  const std::string js = registry.ToJson();
  auto parsed = json::Parse(js);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* family = parsed.value().Find("demo_requests");
  ASSERT_NE(family, nullptr);
  EXPECT_NE(js.find("demo_latency_seconds"), std::string::npos);

  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("demo_requests"), std::string::npos);
  EXPECT_NE(prom.find("demo_latency_seconds"), std::string::npos);

  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("demo_requests"), std::string::npos);
  EXPECT_NE(csv.find("demo_latency_seconds"), std::string::npos);
}

}  // namespace
}  // namespace eadrl::obs
