// Parallel-vs-serial determinism: the contract in DESIGN.md ("Parallel
// runtime") is that EADRL_THREADS only changes wall-clock time, never a
// forecast. These tests run the fast-mode pipeline once on the serial path
// and once on a 4-thread default pool and require bit-identical results.

#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/logging.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "models/forecaster.h"
#include "models/pool.h"
#include "par/thread_pool.h"
#include "ts/datasets.h"

namespace eadrl {
namespace {

/// Restores the serial default pool when a test exits.
struct SerialPoolGuard {
  ~SerialPoolGuard() { par::SetDefaultThreads(1); }
};

exp::ExperimentOptions FastOptions() {
  exp::ExperimentOptions opt;
  opt.seed = 42;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 2;
  opt.eadrl.omega = 5;
  opt.eadrl.max_episodes = 4;
  opt.eadrl.max_iterations = 25;
  opt.eadrl.restarts = 2;
  opt.eadrl.batch_size = 16;         // >= the parallel-Update threshold.
  opt.eadrl.warmup_transitions = 32; // updates kick in mid-episode.
  opt.eadrl.early_stop = false;
  return opt;
}

/// Fits the pool, trains EA-DRL and rolls it over the test segment with the
/// current default pool; returns the online predictions.
math::Vec RunPipeline(const ts::Series& series,
                      const exp::ExperimentOptions& opt) {
  exp::PoolRun pool = exp::PreparePool(series, opt);
  core::EadrlConfig cfg = opt.eadrl;
  cfg.seed = opt.seed;
  core::EadrlCombiner combiner(cfg);
  Status st = combiner.Initialize(pool.val_preds, pool.val_actuals);
  EADRL_CHECK(st.ok());
  math::Vec predictions(pool.test_preds.rows());
  for (size_t t = 0; t < pool.test_preds.rows(); ++t) {
    math::Vec preds = pool.test_preds.Row(t);
    predictions[t] = combiner.Predict(preds);
    combiner.Update(preds, pool.test_actuals[t]);
  }
  return predictions;
}

TEST(ParDeterminismTest, ParallelForecastsBitIdenticalToSerial) {
  SerialPoolGuard guard;
  auto series = ts::MakeDataset(2, 42, 220);
  ASSERT_TRUE(series.ok());
  exp::ExperimentOptions opt = FastOptions();

  par::SetDefaultThreads(1);
  math::Vec serial = RunPipeline(*series, opt);

  par::SetDefaultThreads(4);
  ASSERT_TRUE(par::DefaultPool().parallel());
  math::Vec parallel = RunPipeline(*series, opt);

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial.empty());
  for (size_t t = 0; t < serial.size(); ++t) {
    // Bitwise comparison, not a tolerance: memcmp of the raw doubles.
    EXPECT_EQ(std::memcmp(&serial[t], &parallel[t], sizeof(double)), 0)
        << "step " << t << ": serial=" << serial[t]
        << " parallel=" << parallel[t];
  }
}

// ---------------------------------------------------------------------------
// FitPool reordering determinism (the satellite bugfix): drop warnings and
// the returned model order must not depend on fit completion order.
// ---------------------------------------------------------------------------

class StubForecaster : public models::Forecaster {
 public:
  StubForecaster(std::string name, bool fail, int fit_delay_ms)
      : name_(std::move(name)), fail_(fail), fit_delay_ms_(fit_delay_ms) {}

  const std::string& name() const override { return name_; }

  Status Fit(const ts::Series&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(fit_delay_ms_));
    if (fail_) return Status::InvalidArgument("stub cannot fit");
    return Status::Ok();
  }

  double PredictNext() override { return 0.0; }
  void Observe(double) override {}

 private:
  std::string name_;
  bool fail_;
  int fit_delay_ms_;
};

class CollectingLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (record.level == LogLevel::kWarning) {
      warnings_.push_back(record.message);
    }
  }

  std::vector<std::string> warnings() {
    std::lock_guard<std::mutex> lock(mu_);
    return warnings_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> warnings_;
};

TEST(ParDeterminismTest, FitPoolOrderAndWarningsIgnoreCompletionOrder) {
  // Delays make completion order the reverse of pool order; every observable
  // output must still follow pool order.
  std::vector<std::unique_ptr<models::Forecaster>> pool;
  pool.push_back(std::make_unique<StubForecaster>("m0", false, 40));
  pool.push_back(std::make_unique<StubForecaster>("m1-fails", true, 30));
  pool.push_back(std::make_unique<StubForecaster>("m2", false, 20));
  pool.push_back(std::make_unique<StubForecaster>("m3-fails", true, 10));
  pool.push_back(std::make_unique<StubForecaster>("m4", false, 0));

  CollectingLogSink sink;
  SetLogSink(&sink);
  par::ThreadPool exec(4);
  ts::Series train("train", math::Vec(32, 1.0));
  auto fitted = models::FitPool(std::move(pool), train, &exec);
  SetLogSink(nullptr);

  ASSERT_EQ(fitted.size(), 3u);
  EXPECT_EQ(fitted[0]->name(), "m0");
  EXPECT_EQ(fitted[1]->name(), "m2");
  EXPECT_EQ(fitted[2]->name(), "m4");

  std::vector<std::string> warnings = sink.warnings();
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[0].find("m1-fails"), std::string::npos) << warnings[0];
  EXPECT_NE(warnings[1].find("m3-fails"), std::string::npos) << warnings[1];
}

TEST(ParDeterminismTest, RunSuiteReturnsResultsInInputOrder) {
  SerialPoolGuard guard;
  par::SetDefaultThreads(4);
  std::vector<ts::Series> datasets;
  for (int id : {2, 3}) {
    auto s = ts::MakeDataset(id, 42, 180);
    ASSERT_TRUE(s.ok());
    datasets.push_back(*s);
  }
  exp::ExperimentOptions opt = FastOptions();
  opt.eadrl.restarts = 1;
  opt.eadrl.max_episodes = 2;
  opt.include_standalone = false;

  std::vector<exp::DatasetResult> results = exp::RunSuite(datasets, opt);
  ASSERT_EQ(results.size(), datasets.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].dataset, datasets[i].name());
    EXPECT_FALSE(results[i].methods.empty());
  }
}

}  // namespace
}  // namespace eadrl
