// Runtime half of lock discipline (DESIGN.md, "Correctness tooling"):
// chk::OrderedMutex acquisitions feed chk::LockTracker, which keeps a
// per-thread held stack and a process-wide acquired-after edge graph over
// the ranks of src/chk/lock_order.def. The first acquisition that would
// close a cycle in that graph fails a contract — even when the two
// conflicting paths never ran concurrently. These tests hold the header's
// two claims: cycles are caught when lockdep is compiled in, and a
// checks-off build performs zero tracked acquisitions.

#include "chk/lockdep.h"

#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "chk/chk.h"

namespace eadrl::chk {
namespace {

[[noreturn]] void ThrowHandler(const char* message) {
  throw std::runtime_error(message);
}

/// Throwing failure handler plus a clean tracker per test: the edge graph is
/// process-wide, so leftover edges from one test would change what counts as
/// a cycle in the next.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetFailureHandlerForTest(&ThrowHandler);
    if (LockdepCompiled()) {
      LockTracker::Instance().ResetForTest();
      LockTracker::Instance().SetEnabledForTest(true);
    }
  }
  void TearDown() override {
    if (LockdepCompiled()) {
      LockTracker::Instance().SetEnabledForTest(true);
      LockTracker::Instance().ResetForTest();
    }
    SetFailureHandlerForTest(nullptr);
  }
};

/// Runs `fn`, expecting a lock-discipline contract violation whose message
/// contains every string in `needles`.
template <typename Fn>
void ExpectViolation(Fn fn, const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected a lock-order contract violation";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("contract violated"), std::string::npos) << message;
    for (const std::string& needle : needles) {
      EXPECT_NE(message.find(needle), std::string::npos)
          << "missing '" << needle << "' in: " << message;
    }
  }
}

TEST(LockRankTest, RegistryNamesAreExposed) {
  EXPECT_GT(kLockRankCount, 0u);
  EXPECT_STREQ(LockRankName(LockRank::k_serve_queue), "serve_queue");
  EXPECT_STREQ(LockRankName(LockRank::k_obs_trace_shard), "obs_trace_shard");
}

// Every test's mutex pair is `static`: TSan's deadlock detector keys pthread
// mutexes by address and std::mutex never calls pthread_mutex_destroy, so
// stack-allocated pairs recycle addresses across tests and TSan would merge
// this test's queue->session order with a later test's deliberate
// session->queue order into a false lock-order-inversion report. Distinct
// static addresses keep each pair's acquisition order one-directional.
TEST_F(LockOrderTest, RegistryOrderAcquisitionIsClean) {
  static OrderedMutex queue{EADRL_LOCK_RANK(serve_queue), "test::queue"};
  static OrderedMutex session{EADRL_LOCK_RANK(serve_session), "test::session"};
  for (int pass = 0; pass < 2; ++pass) {
    std::lock_guard<OrderedMutex> q(queue);
    std::lock_guard<OrderedMutex> s(session);
    if (LockdepCompiled()) {
      EXPECT_EQ(LockTracker::Instance().GetStats().held_on_this_thread, 2u);
    }
  }
  if (LockdepCompiled()) {
    const LockTracker::Stats stats = LockTracker::Instance().GetStats();
    EXPECT_EQ(stats.tracked_acquisitions, 4u);
    // The queue->session edge is recorded once; the second pass takes the
    // lock-free seen-before fast path.
    EXPECT_EQ(stats.edges_recorded, 1u);
    EXPECT_EQ(stats.held_on_this_thread, 0u);
  }
}

TEST_F(LockOrderTest, CycleDetectionFiresOnInvertedOrder) {
  if (!LockdepCompiled()) GTEST_SKIP() << "lockdep compiled out";
  static OrderedMutex queue{EADRL_LOCK_RANK(serve_queue), "test::queue"};
  static OrderedMutex session{EADRL_LOCK_RANK(serve_session), "test::session"};
  {  // Path 1 records queue -> session.
    std::lock_guard<OrderedMutex> q(queue);
    std::lock_guard<OrderedMutex> s(session);
  }
  // Path 2 (session then queue) closes the cycle on this same thread — no
  // unlucky interleaving has to happen for lockdep to flag it. The report
  // names both sites of the earlier edge.
  ExpectViolation(
      [&] {
        std::lock_guard<OrderedMutex> s(session);
        std::lock_guard<OrderedMutex> q(queue);
      },
      {"lock-order cycle", "test::queue", "test::session", "serve_queue",
       "serve_session", "deadlock under interleaving"});
  // The failing acquire never locked the mutex, so it is still free.
  EXPECT_TRUE(queue.try_lock());
  queue.unlock();
  EXPECT_EQ(LockTracker::Instance().GetStats().held_on_this_thread, 0u);
}

TEST_F(LockOrderTest, CycleIsCaughtAcrossThreads) {
  if (!LockdepCompiled()) GTEST_SKIP() << "lockdep compiled out";
  static OrderedMutex queue{EADRL_LOCK_RANK(serve_queue), "test::queue"};
  static OrderedMutex session{EADRL_LOCK_RANK(serve_session), "test::session"};
  // A worker records the queue -> session edge, then exits. The graph is
  // process-wide, so the main thread's inverted path still closes the cycle
  // even though the two paths never overlapped in time.
  std::thread worker([&] {
    std::lock_guard<OrderedMutex> q(queue);
    std::lock_guard<OrderedMutex> s(session);
  });
  worker.join();
  ExpectViolation(
      [&] {
        std::lock_guard<OrderedMutex> s(session);
        std::lock_guard<OrderedMutex> q(queue);
      },
      {"lock-order cycle", "test::queue", "test::session"});
}

TEST_F(LockOrderTest, SameRankNeedsAscendingAddressOrder) {
  if (!LockdepCompiled()) GTEST_SKIP() << "lockdep compiled out";
  static OrderedMutex a{EADRL_LOCK_RANK(serve_session), "test::a"};
  static OrderedMutex b{EADRL_LOCK_RANK(serve_session), "test::b"};
  OrderedMutex* lo = &a;
  OrderedMutex* hi = &b;
  if (std::less<const OrderedMutex*>()(hi, lo)) std::swap(lo, hi);
  {  // Ascending address order is the legal same-rank discipline.
    std::lock_guard<OrderedMutex> first(*lo);
    std::lock_guard<OrderedMutex> second(*hi);
  }
  ExpectViolation(
      [&] {
        std::lock_guard<OrderedMutex> first(*hi);
        std::lock_guard<OrderedMutex> second(*lo);
      },
      {"same rank", "ascending address order"});
}

TEST_F(LockOrderTest, TryLockRecordsNoEdges) {
  if (!LockdepCompiled()) GTEST_SKIP() << "lockdep compiled out";
  static OrderedMutex queue{EADRL_LOCK_RANK(serve_queue), "test::queue"};
  static OrderedMutex session{EADRL_LOCK_RANK(serve_session), "test::session"};
  {
    std::lock_guard<OrderedMutex> s(session);
    // Out of registry order, but a successful try_lock cannot deadlock, so
    // it contributes no acquired-after edge (lockdep's trylock convention).
    ASSERT_TRUE(queue.try_lock());
    queue.unlock();
  }
  EXPECT_EQ(LockTracker::Instance().GetStats().edges_recorded, 0u);
}

TEST_F(LockOrderTest, DisabledTrackerIgnoresAcquisitions) {
  if (!LockdepCompiled()) GTEST_SKIP() << "lockdep compiled out";
  LockTracker::Instance().SetEnabledForTest(false);
  static OrderedMutex queue{EADRL_LOCK_RANK(serve_queue), "test::queue"};
  static OrderedMutex session{EADRL_LOCK_RANK(serve_session), "test::session"};
  {  // Inverted, but tracking is off: must stay silent and untracked.
    std::lock_guard<OrderedMutex> s(session);
    std::lock_guard<OrderedMutex> q(queue);
  }
  const LockTracker::Stats stats = LockTracker::Instance().GetStats();
  EXPECT_EQ(stats.tracked_acquisitions, 0u);
  EXPECT_EQ(stats.edges_recorded, 0u);
}

TEST_F(LockOrderTest, CompiledOutBuildPerformsZeroTracking) {
  if (LockdepCompiled()) GTEST_SKIP() << "covered by the tracking tests";
  static OrderedMutex queue{EADRL_LOCK_RANK(serve_queue), "test::queue"};
  static OrderedMutex session{EADRL_LOCK_RANK(serve_session), "test::session"};
  {  // Inverted order: with the hooks compiled out this must be silent.
    std::lock_guard<OrderedMutex> s(session);
    std::lock_guard<OrderedMutex> q(queue);
  }
  const LockTracker::Stats stats = LockTracker::Instance().GetStats();
  EXPECT_EQ(stats.tracked_acquisitions, 0u);
  EXPECT_EQ(stats.edges_recorded, 0u);
}

}  // namespace
}  // namespace eadrl::chk
