#include "math/special.h"

#include <cmath>

#include <gtest/gtest.h>

namespace eadrl::math {
namespace {

TEST(LogGammaTest, IntegerFactorials) {
  // Gamma(n) = (n-1)!.
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(LogGamma(10.0), std::log(362880.0), 1e-7);
}

TEST(LogGammaTest, HalfInteger) {
  // Gamma(0.5) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-9);
}

TEST(IncompleteBetaTest, Endpoints) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricCase) {
  // I_{1/2}(a, a) = 1/2.
  EXPECT_NEAR(RegularizedIncompleteBeta(3, 3, 0.5), 0.5, 1e-9);
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.37), 0.37, 1e-9);
}

TEST(StudentTCdfTest, SymmetryAtZero) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-10);
  EXPECT_NEAR(StudentTCdf(1.3, 7.0) + StudentTCdf(-1.3, 7.0), 1.0, 1e-10);
}

TEST(StudentTCdfTest, KnownQuantiles) {
  // t_{0.975, 10} ~= 2.228.
  EXPECT_NEAR(StudentTCdf(2.228, 10.0), 0.975, 1e-3);
  // t_{0.95, 5} ~= 2.015.
  EXPECT_NEAR(StudentTCdf(2.015, 5.0), 0.95, 1e-3);
}

TEST(StudentTCdfTest, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(StudentTCdf(1.96, 10000.0), NormalCdf(1.96), 1e-3);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

}  // namespace
}  // namespace eadrl::math
