#include "math/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eadrl::math {
namespace {

Matrix RandomSpd(size_t n, Rng& rng) {
  Matrix a(n, n);
  for (double& v : a.data()) v = rng.Uniform(-1.0, 1.0);
  // A^T A + n I is symmetric positive definite.
  Matrix spd = a.Transpose().MatMul(a);
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(3);
  Matrix a = RandomSpd(5, rng);
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix rec = l->MatMul(l->Transpose());
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(rec(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3 and -1.
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, SolveRecoversSolution) {
  Rng rng(17);
  Matrix a = RandomSpd(6, rng);
  Vec x_true(6);
  for (double& v : x_true) v = rng.Uniform(-2.0, 2.0);
  Vec b = a.MatVec(x_true);
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, InverseTimesMatrixIsIdentity) {
  Rng rng(21);
  Matrix a = RandomSpd(4, rng);
  auto inv = CholeskyInverse(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a.MatMul(*inv);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(LuSolveTest, SolvesGeneralSystem) {
  Matrix a{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};
  Vec b{-8, 0, 3};
  auto x = LuSolve(a, b);
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  Vec ax = a.MatVec(*x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(LuSolveTest, PivotingHandlesZeroDiagonal) {
  Matrix a{{0, 1}, {1, 0}};
  auto x = LuSolve(a, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LuSolveTest, DetectsSingular) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(LuSolve(a, {1, 2}).ok());
}

TEST(RidgeTest, InterpolatesWithTinyLambda) {
  // Overdetermined consistent system.
  Matrix x{{1, 0}, {0, 1}, {1, 1}};
  Vec w_true{2.0, -1.0};
  Vec y = x.MatVec(w_true);
  auto w = SolveRidge(x, y, 1e-10);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0], 2.0, 1e-4);
  EXPECT_NEAR((*w)[1], -1.0, 1e-4);
}

TEST(RidgeTest, LargeLambdaShrinksTowardZero) {
  Matrix x{{1, 0}, {0, 1}};
  auto w = SolveRidge(x, {1, 1}, 1e6);
  ASSERT_TRUE(w.ok());
  EXPECT_LT(std::fabs((*w)[0]), 1e-4);
}

TEST(RidgeTest, RejectsNegativeLambda) {
  Matrix x(2, 2);
  EXPECT_FALSE(SolveRidge(x, {1, 2}, -1.0).ok());
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix a{{3, 0}, {0, 1}};
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(JacobiEigenTest, KnownEigenvalues) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a{{2, 1}, {1, 2}};
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  Rng rng(5);
  Matrix a = RandomSpd(6, rng);
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  // A = V diag(lambda) V^T.
  Matrix vl(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      vl(i, j) = eig->vectors(i, j) * eig->values[j];
    }
  }
  Matrix rec = vl.MatMul(eig->vectors.Transpose());
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
    }
  }
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  Rng rng(9);
  Matrix a = RandomSpd(5, rng);
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  Matrix vtv = eig->vectors.Transpose().MatMul(eig->vectors);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

}  // namespace
}  // namespace eadrl::math
