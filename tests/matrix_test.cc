#include "math/matrix.h"

#include <gtest/gtest.h>

namespace eadrl::math {
namespace {

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowColAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (Vec{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (Vec{3, 6}));
  m.SetRow(0, {7, 8, 9});
  EXPECT_EQ(m.Row(0), (Vec{7, 8, 9}));
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MatMul) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatVecAndTransposeMatVec) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a.MatVec({1, 1, 1}), (Vec{6, 15}));
  EXPECT_EQ(a.TransposeMatVec({1, 1}), (Vec{5, 7, 9}));
}

TEST(MatrixTest, TransposeMatVecMatchesExplicitTranspose) {
  Matrix a{{1, -2, 0.5}, {3, 4, -1}, {0, 2, 2}, {5, -5, 1}};
  Vec x{0.3, -1.2, 2.0, 0.7};
  Vec direct = a.TransposeMatVec(x);
  Vec via = a.Transpose().MatVec(x);
  ASSERT_EQ(direct.size(), via.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via[i], 1e-12);
  }
}

TEST(MatrixTest, AddScaledAndScale) {
  Matrix a{{1, 1}, {1, 1}};
  Matrix b{{1, 2}, {3, 4}};
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 9.0);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.5);
}

TEST(MatrixTest, Norms) {
  Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

}  // namespace
}  // namespace eadrl::math
