#include "math/matrix.h"

#include <gtest/gtest.h>

namespace eadrl::math {
namespace {

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowColAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (Vec{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (Vec{3, 6}));
  m.SetRow(0, {7, 8, 9});
  EXPECT_EQ(m.Row(0), (Vec{7, 8, 9}));
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MatMul) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatVecAndTransposeMatVec) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a.MatVec({1, 1, 1}), (Vec{6, 15}));
  EXPECT_EQ(a.TransposeMatVec({1, 1}), (Vec{5, 7, 9}));
}

TEST(MatrixTest, TransposeMatVecMatchesExplicitTranspose) {
  Matrix a{{1, -2, 0.5}, {3, 4, -1}, {0, 2, 2}, {5, -5, 1}};
  Vec x{0.3, -1.2, 2.0, 0.7};
  Vec direct = a.TransposeMatVec(x);
  Vec via = a.Transpose().MatVec(x);
  ASSERT_EQ(direct.size(), via.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via[i], 1e-12);
  }
}

TEST(MatrixTest, AddScaledAndScale) {
  Matrix a{{1, 1}, {1, 1}};
  Matrix b{{1, 2}, {3, 4}};
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 9.0);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.5);
}

TEST(MatrixTest, Norms) {
  Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

// ---------------------------------------------------------------------------
// Batch-major kernels. Bit-identical comparisons (EXPECT_DOUBLE_EQ) are
// deliberate: the determinism contract in matrix.h promises the blocked and
// fused kernels reproduce the naive loops exactly, not just approximately.

Matrix PseudoRandom(size_t rows, size_t cols, unsigned seed) {
  // Small LCG so the fixtures need no RNG dependency; values in [-1, 1).
  Matrix m(rows, cols);
  unsigned x = seed * 2654435761u + 1u;
  for (double& v : m.data()) {
    x = x * 1664525u + 1013904223u;
    v = static_cast<double>(x % 20000u) / 10000.0 - 1.0;
  }
  return m;
}

// Naive triple loop in the contract's ascending-k order.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      out(i, j) = s;
    }
  }
  return out;
}

TEST(MatrixKernelTest, BlockedMatMulMatchesNaiveBitwise) {
  // Shapes straddling the 4-row register block, including remainder rows.
  for (size_t m : {1u, 3u, 4u, 5u, 8u, 17u}) {
    Matrix a = PseudoRandom(m, 7, 1);
    Matrix b = PseudoRandom(7, 5, 2);
    Matrix got = a.MatMul(b);
    Matrix want = NaiveMatMul(a, b);
    ASSERT_EQ(got.rows(), want.rows());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.data()[i], want.data()[i]) << "m=" << m;
    }
  }
}

TEST(MatrixKernelTest, MatMulTransposeAMatchesMaterializedBitwise) {
  Matrix a = PseudoRandom(6, 4, 3);
  Matrix b = PseudoRandom(6, 5, 4);
  Matrix fused = a.MatMulTransposeA(b);
  Matrix chained = a.Transpose().MatMul(b);
  ASSERT_EQ(fused.rows(), 4u);
  ASSERT_EQ(fused.cols(), 5u);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_DOUBLE_EQ(fused.data()[i], chained.data()[i]);
  }
}

TEST(MatrixKernelTest, MatMulTransposeAAccumulatesInAscendingRowOrder) {
  Matrix a = PseudoRandom(5, 3, 5);
  Matrix b = PseudoRandom(5, 2, 6);
  // Per-sample accumulation: out += a_row_k^T b_row_k, k ascending.
  Matrix want(3, 2, 0.25);
  for (size_t k = 0; k < a.rows(); ++k) {
    for (size_t i = 0; i < 3u; ++i) {
      for (size_t j = 0; j < 2u; ++j) want(i, j) += a(k, i) * b(k, j);
    }
  }
  Matrix got(3, 2, 0.25);
  a.MatMulTransposeAInto(b, &got, /*accumulate=*/true);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.data()[i], want.data()[i]);
  }
}

TEST(MatrixKernelTest, MatMulTransposeBMatchesMaterializedBitwise) {
  for (size_t cols : {1u, 3u, 4u, 6u}) {  // straddle the 4-column tile.
    Matrix x = PseudoRandom(5, 7, 7);
    Matrix w = PseudoRandom(cols, 7, 8);
    Matrix fused = x.MatMulTransposeB(w);
    Matrix chained = x.MatMul(w.Transpose());
    ASSERT_EQ(fused.cols(), cols);
    for (size_t i = 0; i < fused.size(); ++i) {
      EXPECT_DOUBLE_EQ(fused.data()[i], chained.data()[i]) << "cols=" << cols;
    }
  }
}

TEST(MatrixKernelTest, TransposeMatVecKeepsExactZeroHandling) {
  // The branch-free kernel must match the old skip-zero loop on values
  // (a skipped term and an added 0.0*row term agree for finite rows).
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Vec x{2.0, 0.0, -1.0};
  Vec got = a.TransposeMatVec(x);
  EXPECT_EQ(got, (Vec{2.0 * 1 - 5, 2.0 * 2 - 6}));
}

TEST(MatrixKernelTest, IntoVariantsReuseCapacityAcrossShapes) {
  Matrix a = PseudoRandom(6, 6, 9);
  Matrix b = PseudoRandom(6, 6, 10);
  Matrix out;
  a.MatMulInto(b, &out);
  const double* warm = out.data().data();
  a.MatMulInto(b, &out);  // same shape: must not reallocate.
  EXPECT_EQ(out.data().data(), warm);
  Vec v;
  a.RowInto(2, &v);
  EXPECT_EQ(v, a.Row(2));
  a.ColInto(3, &v);
  EXPECT_EQ(v, a.Col(3));
  Vec y;
  a.MatVecInto(v, &y);
  EXPECT_EQ(y, a.MatVec(v));
}

TEST(MatrixKernelTest, ResizeKeepsCapacityAndShape) {
  Matrix m(4, 8, 1.0);
  const double* warm = m.data().data();
  m.Resize(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m.Resize(4, 8);
  EXPECT_EQ(m.data().data(), warm);  // never shrank capacity.
}

TEST(MatrixKernelTest, SoftmaxRowsMatchesVectorSoftmaxBitwise) {
  Matrix m = PseudoRandom(5, 9, 11);
  m.Scale(3.0);  // spread the logits a bit.
  Matrix rows = m;
  SoftmaxRowsInPlace(&rows);
  for (size_t r = 0; r < m.rows(); ++r) {
    Vec want = Softmax(m.Row(r));
    for (size_t j = 0; j < m.cols(); ++j) {
      EXPECT_DOUBLE_EQ(rows(r, j), want[j]);
    }
  }
}

}  // namespace
}  // namespace eadrl::math
