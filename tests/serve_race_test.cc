// Concurrency test for the serving layer, written to run under
// ThreadSanitizer (check.sh runs the test suite under TSan): producer
// threads hammer blocking Predict/ObserveActual on disjoint tenant sets
// while other threads churn session create/evict, sweep TTLs, and read
// Stats/GetSessionInfo — exercising the striped table locks, per-session
// mutexes, the policy workspace mutex, and the queue's drainer handoff all
// at once. The assertions are deliberately coarse (no lost or duplicated
// completions, balanced in-flight accounting); the sanitizer provides the
// real verdict.

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/eadrl.h"
#include "exp/experiment.h"
#include "math/vec.h"
#include "par/thread_pool.h"
#include "serve/service.h"
#include "ts/datasets.h"

namespace eadrl {
namespace {

struct Trained {
  exp::PoolRun pool;
  core::EadrlConfig config;
  std::string policy_path;
};

const Trained& GetTrained() {
  static Trained* trained = [] {
    auto* t = new Trained;
    auto series = ts::MakeDataset(2, 42, 160);
    EXPECT_TRUE(series.ok());
    exp::ExperimentOptions opt;
    opt.seed = 42;
    opt.pool.fast_mode = true;
    opt.pool.nn_epochs = 2;
    opt.eadrl.max_episodes = 2;
    opt.eadrl.restarts = 1;
    t->pool = exp::PreparePool(*series, opt);
    t->config = opt.eadrl;
    core::EadrlCombiner combiner(opt.eadrl);
    EXPECT_TRUE(combiner.Initialize(t->pool.val_preds, t->pool.val_actuals).ok());
    t->policy_path = ::testing::TempDir() + "serve_race_policy.eadrl";
    EXPECT_TRUE(combiner.SavePolicy(t->policy_path).ok());
    return t;
  }();
  return *trained;
}

std::unique_ptr<core::EadrlCombiner> NewCombiner() {
  auto combiner = std::make_unique<core::EadrlCombiner>(GetTrained().config);
  EXPECT_TRUE(combiner->LoadPolicy(GetTrained().policy_path).ok());
  return combiner;
}

// Built with += (GCC 12 raises a false-positive -Wrestrict on chained
// std::string operator+ under -Werror).
std::string TenantName(size_t producer, size_t index) {
  std::string name = "p";
  name += std::to_string(producer);
  name += '-';
  name += std::to_string(index);
  return name;
}

TEST(ServeRaceTest, ConcurrentTenantsChurnAndIntrospection) {
  constexpr size_t kProducers = 4;
  constexpr size_t kTenantsPerProducer = 2;
  constexpr size_t kOpsPerProducer = 60;
  constexpr size_t kChurnOps = 40;

  const Trained& trained = GetTrained();
  // Declared before the service: the pool must outlive it.
  par::ThreadPool pool(4);
  serve::ServeConfig config;
  config.pool = &pool;
  config.shards = 4;  // fewer stripes than threads → contended shard locks.
  config.max_queue = 4096;
  // Long enough that no session ages out mid-run: the sweeper thread then
  // exercises the sweep's shard-lock path without invalidating the
  // producers' sessions (TTL eviction itself is covered in serve_test.cc).
  config.session_ttl_seconds = 60.0;
  serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(NewCombiner());

  for (size_t p = 0; p < kProducers; ++p) {
    for (size_t i = 0; i < kTenantsPerProducer; ++i) {
      ASSERT_TRUE(service.CreateSession(TenantName(p, i), policy_id).ok());
    }
  }

  std::atomic<size_t> predict_ok{0};
  std::atomic<size_t> predict_err{0};
  std::atomic<bool> stop{false};

  // Producers: blocking request streams on disjoint tenant sets. These run
  // on plain std::threads, not pool workers — pool capacity stays free for
  // the drainer.
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      const auto& preds = trained.pool.test_preds;
      const auto& actuals = trained.pool.test_actuals;
      for (size_t op = 0; op < kOpsPerProducer; ++op) {
        const std::string tenant = TenantName(p, op % kTenantsPerProducer);
        StatusOr<double> out =
            service.Predict(tenant, preds.Row(op % preds.rows()));
        if (out.ok()) {
          ++predict_ok;
        } else {
          ++predict_err;
        }
        Status obs = service.ObserveActual(tenant, actuals[op % actuals.size()]);
        // Shedding is legal under load; lost sessions are not (this
        // producer owns its tenants and never evicts them).
        if (!obs.ok()) {
          EXPECT_EQ(obs.code(), StatusCode::kResourceExhausted);
        }
      }
    });
  }

  // Churn: create/predict/evict a disjoint tenant namespace, racing evictions
  // against the churn tenants' own in-flight requests.
  threads.emplace_back([&] {
    for (size_t op = 0; op < kChurnOps; ++op) {
      const std::string tenant = "churn-" + std::to_string(op % 4);
      Status created = service.CreateSession(tenant, policy_id);
      if (!created.ok()) {
        EXPECT_EQ(created.code(), StatusCode::kFailedPrecondition);
        (void)service.EvictSession(tenant);
        continue;
      }
      (void)service.PredictAsync(
          tenant, trained.pool.test_preds.Row(op % trained.pool.test_preds.rows()),
          [](StatusOr<double> result) { (void)result; });
      (void)service.EvictSession(tenant);
    }
  });

  // TTL sweeper, racing Lookup's last-activity bumps.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)service.EvictIdleSessions();
      std::this_thread::yield();
    }
  });

  // Introspection: stats, per-session info and latency quantiles are safe to
  // read at any time.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const serve::ServeStats stats = service.Stats();
      EXPECT_LE(stats.predicts, static_cast<uint64_t>(kProducers) *
                                    kOpsPerProducer +
                                    kChurnOps);
      (void)service.GetSessionInfo("p0-0");
      (void)service.PredictLatencySnapshot();
      std::this_thread::yield();
    }
  });

  for (size_t p = 0; p < kProducers; ++p) threads[p].join();
  threads[kProducers].join();  // churn
  stop.store(true, std::memory_order_release);
  for (size_t i = kProducers + 1; i < threads.size(); ++i) threads[i].join();
  service.Flush();

  // Every producer predict targeted a resident session; with an unbounded
  // in-flight budget none may fail for any reason but shedding, and this
  // queue never filled (blocking callers self-throttle).
  EXPECT_EQ(predict_ok.load(), kProducers * kOpsPerProducer);
  EXPECT_EQ(predict_err.load(), 0u);
  const serve::ServeStats stats = service.Stats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.predicts, predict_ok.load());
}

}  // namespace
}  // namespace eadrl
