#include "models/ets.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/forecaster.h"
#include "ts/metrics.h"

namespace eadrl::models {
namespace {

TEST(EtsTest, NamesByVariant) {
  EXPECT_EQ(EtsForecaster(EtsVariant::kSimple).name(), "ets-ses");
  EXPECT_EQ(EtsForecaster(EtsVariant::kHolt).name(), "ets-holt");
  EXPECT_EQ(EtsForecaster(EtsVariant::kDampedHolt).name(), "ets-damped-holt");
  EXPECT_EQ(EtsForecaster(EtsVariant::kHoltWintersAdditive).name(),
            "ets-holt-winters");
}

TEST(EtsTest, SesTracksConstantSeries) {
  Rng rng(1);
  math::Vec v(200);
  for (double& x : v) x = 10.0 + rng.Normal(0, 0.1);
  EtsForecaster ses(EtsVariant::kSimple);
  ASSERT_TRUE(ses.Fit(ts::Series("const", std::move(v))).ok());
  EXPECT_NEAR(ses.PredictNext(), 10.0, 0.3);
}

TEST(EtsTest, HoltExtrapolatesTrend) {
  math::Vec v(100);
  for (size_t t = 0; t < 100; ++t) v[t] = 2.0 * static_cast<double>(t);
  EtsForecaster holt(EtsVariant::kHolt);
  ASSERT_TRUE(holt.Fit(ts::Series("trend", std::move(v))).ok());
  // Next value should be ~200.
  EXPECT_NEAR(holt.PredictNext(), 200.0, 2.0);
}

TEST(EtsTest, SesLagsOnTrendButHoltDoesNot) {
  math::Vec v(100);
  for (size_t t = 0; t < 100; ++t) v[t] = 2.0 * static_cast<double>(t);
  ts::Series s("trend", std::move(v));
  EtsForecaster ses(EtsVariant::kSimple);
  EtsForecaster holt(EtsVariant::kHolt);
  ASSERT_TRUE(ses.Fit(s).ok());
  ASSERT_TRUE(holt.Fit(s).ok());
  EXPECT_LT(std::fabs(holt.PredictNext() - 200.0),
            std::fabs(ses.PredictNext() - 200.0));
}

TEST(EtsTest, HoltWintersCapturesSeasonality) {
  // Clean period-12 seasonal pattern plus level.
  math::Vec v(240);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = 50.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0);
  }
  ts::Series s("seasonal", std::move(v), "monthly", 12);
  auto split = ts::SplitTrainTest(s, 0.8);

  EtsForecaster hw(EtsVariant::kHoltWintersAdditive, 12);
  EtsForecaster ses(EtsVariant::kSimple);
  ASSERT_TRUE(hw.Fit(split.train).ok());
  ASSERT_TRUE(ses.Fit(split.train).ok());

  math::Vec hw_preds = RollingForecast(&hw, split.test);
  math::Vec ses_preds = RollingForecast(&ses, split.test);
  EXPECT_LT(ts::Rmse(split.test.values(), hw_preds),
            ts::Rmse(split.test.values(), ses_preds));
}

TEST(EtsTest, HoltWintersPicksPeriodFromSeries) {
  math::Vec v(120);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 6.0);
  }
  ts::Series s("seasonal", std::move(v), "", 6);
  EtsForecaster hw(EtsVariant::kHoltWintersAdditive);  // no explicit period.
  EXPECT_TRUE(hw.Fit(s).ok());
}

TEST(EtsTest, GridSearchSelectsHighAlphaForRandomWalk) {
  // On a random walk the best SES alpha is close to 1.
  Rng rng(3);
  math::Vec v(500);
  double x = 0.0;
  for (double& val : v) {
    x += rng.Normal(0, 1);
    val = x;
  }
  EtsForecaster ses(EtsVariant::kSimple);
  ASSERT_TRUE(ses.Fit(ts::Series("rw", std::move(v))).ok());
  EXPECT_GE(ses.alpha(), 0.7);
}

TEST(EtsTest, ObserveMovesForecast) {
  Rng rng(4);
  math::Vec v(100);
  for (double& x : v) x = rng.Normal(5, 0.5);
  EtsForecaster ses(EtsVariant::kSimple);
  ASSERT_TRUE(ses.Fit(ts::Series("x", std::move(v))).ok());
  double before = ses.PredictNext();
  for (int i = 0; i < 20; ++i) ses.Observe(20.0);
  double after = ses.PredictNext();
  EXPECT_GT(after, before + 5.0);  // level moved toward 20.
}

TEST(EtsTest, RejectsShortSeries) {
  EtsForecaster ses(EtsVariant::kSimple);
  EXPECT_FALSE(ses.Fit(ts::Series("tiny", {1, 2, 3})).ok());
}

}  // namespace
}  // namespace eadrl::models
