#include <cmath>
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "baselines/expert_aggregation.h"
#include "baselines/static_combiners.h"
#include "common/rng.h"
#include "core/combiner.h"

namespace eadrl::baselines {
namespace {

// Validation data with one clearly superior expert (index `best`).
void MakeExpertData(size_t t_steps, size_t m, size_t best, uint64_t seed,
                    math::Matrix* preds, math::Vec* actuals) {
  Rng rng(seed);
  actuals->resize(t_steps);
  *preds = math::Matrix(t_steps, m);
  for (size_t t = 0; t < t_steps; ++t) {
    double x = std::sin(0.1 * static_cast<double>(t)) * 5.0 + 20.0;
    (*actuals)[t] = x;
    for (size_t i = 0; i < m; ++i) {
      double noise = (i == best) ? 0.05 : 2.0;
      (*preds)(t, i) = x + rng.Normal(0, noise);
    }
  }
}

TEST(SimpleAverageTest, UniformWeights) {
  math::Matrix preds;
  math::Vec actuals;
  MakeExpertData(30, 4, 0, 1, &preds, &actuals);
  SimpleAverageCombiner se;
  ASSERT_TRUE(se.Initialize(preds, actuals).ok());
  math::Vec w = se.Weights();
  for (double v : w) EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_DOUBLE_EQ(se.Predict({1, 2, 3, 4}), 2.5);
}

TEST(SlidingWindowTest, UpweightsAccurateModel) {
  math::Matrix preds;
  math::Vec actuals;
  MakeExpertData(60, 3, 1, 2, &preds, &actuals);
  SlidingWindowCombiner swe(10);
  ASSERT_TRUE(swe.Initialize(preds, actuals).ok());
  math::Vec w = swe.Weights();
  EXPECT_GT(w[1], w[0]);
  EXPECT_GT(w[1], w[2]);
  EXPECT_GT(w[1], 0.5);
}

TEST(SlidingWindowTest, AdaptsWhenBestModelChanges) {
  math::Matrix preds;
  math::Vec actuals;
  MakeExpertData(60, 2, 0, 3, &preds, &actuals);
  SlidingWindowCombiner swe(10);
  ASSERT_TRUE(swe.Initialize(preds, actuals).ok());
  EXPECT_GT(swe.Weights()[0], 0.5);
  // Now model 1 becomes perfect and model 0 terrible.
  Rng rng(4);
  for (int t = 0; t < 20; ++t) {
    double x = 20.0;
    swe.Update({x + rng.Normal(0, 5.0), x + rng.Normal(0, 0.01)}, x);
  }
  EXPECT_GT(swe.Weights()[1], 0.8);
}

// All four expert-aggregation combiners should concentrate weight on the
// clearly best expert after warm-starting on the validation data.
class ExpertAggregationConvergence
    : public ::testing::TestWithParam<int> {
 public:
  static std::unique_ptr<ExpertAggregationBase> Make(int which) {
    switch (which) {
      case 0:
        return std::make_unique<EwaCombiner>(/*eta=*/0.0,
                                             /*warm_start=*/true);
      case 1:
        return std::make_unique<FixedShareCombiner>(/*eta=*/0.0,
                                                    /*alpha=*/0.05,
                                                    /*warm_start=*/true);
      case 2:
        return std::make_unique<OgdCombiner>(/*eta0=*/0.5,
                                             /*warm_start=*/true);
      default:
        return std::make_unique<MlpolCombiner>(/*warm_start=*/true);
    }
  }
};

TEST_P(ExpertAggregationConvergence, ConcentratesOnBestExpert) {
  math::Matrix preds;
  math::Vec actuals;
  const size_t best = 2;
  MakeExpertData(150, 4, best, 5, &preds, &actuals);
  auto combiner = Make(GetParam());
  ASSERT_TRUE(combiner->Initialize(preds, actuals).ok());
  math::Vec w = combiner->Weights();
  ASSERT_EQ(w.size(), 4u);
  double sum = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (size_t i = 0; i < 4; ++i) {
    if (i != best) {
      EXPECT_GT(w[best], w[i]);
    }
  }
}

TEST_P(ExpertAggregationConvergence, PredictIsConvexCombination) {
  math::Matrix preds;
  math::Vec actuals;
  MakeExpertData(60, 3, 0, 6, &preds, &actuals);
  auto combiner = Make(GetParam());
  ASSERT_TRUE(combiner->Initialize(preds, actuals).ok());
  double p = combiner->Predict({1.0, 2.0, 3.0});
  EXPECT_GE(p, 1.0 - 1e-9);
  EXPECT_LE(p, 3.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllAggregators, ExpertAggregationConvergence,
                         ::testing::Values(0, 1, 2, 3));

TEST(FixedShareTest, KeepsFloorOnAllExperts) {
  math::Matrix preds;
  math::Vec actuals;
  MakeExpertData(200, 3, 0, 7, &preds, &actuals);
  FixedShareCombiner fs(/*eta=*/2.0, /*alpha=*/0.1, /*warm_start=*/true);
  ASSERT_TRUE(fs.Initialize(preds, actuals).ok());
  math::Vec w = fs.Weights();
  // The share keeps every weight above alpha / m.
  for (double v : w) EXPECT_GE(v, 0.1 / 3.0 - 1e-9);
}

TEST(FixedShareTest, TracksBestExpertAfterSwitch) {
  math::Matrix preds;
  math::Vec actuals;
  MakeExpertData(100, 2, 0, 8, &preds, &actuals);
  FixedShareCombiner fs(/*eta=*/0.0, /*alpha=*/0.05, /*warm_start=*/true);
  EwaCombiner ewa(/*eta=*/0.0, /*warm_start=*/true);
  ASSERT_TRUE(fs.Initialize(preds, actuals).ok());
  ASSERT_TRUE(ewa.Initialize(preds, actuals).ok());

  // Switch: expert 1 becomes the good one.
  Rng rng(9);
  for (int t = 0; t < 40; ++t) {
    double x = 20.0;
    math::Vec p{x + rng.Normal(0, 2.0), x + rng.Normal(0, 0.05)};
    fs.Update(p, x);
    ewa.Update(p, x);
  }
  // Fixed share must have switched; EWA's heavy history makes it slower.
  EXPECT_GT(fs.Weights()[1], 0.5);
  EXPECT_GE(fs.Weights()[1], ewa.Weights()[1] - 0.05);
}

TEST(MlpolTest, UniformWhenNoPositiveRegret) {
  // A single expert: regret vs. ourselves is ~0, weights stay uniform.
  math::Matrix preds(20, 1);
  math::Vec actuals(20);
  for (size_t t = 0; t < 20; ++t) {
    actuals[t] = 1.0;
    preds(t, 0) = 1.0;
  }
  MlpolCombiner mlpol;
  ASSERT_TRUE(mlpol.Initialize(preds, actuals).ok());
  EXPECT_DOUBLE_EQ(mlpol.Weights()[0], 1.0);
}

}  // namespace
}  // namespace eadrl::baselines
