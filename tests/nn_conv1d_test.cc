#include "nn/conv1d.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/param.h"

namespace eadrl::nn {
namespace {

TEST(Conv1dTest, OutputShapeValidPadding) {
  Rng rng(1);
  Conv1d conv(1, 3, 2, Activation::kIdentity, rng);
  math::Matrix input(5, 1);
  math::Matrix out = conv.Forward(input);
  EXPECT_EQ(out.rows(), 4u);  // 5 - 2 + 1.
  EXPECT_EQ(out.cols(), 3u);
}

TEST(Conv1dTest, KnownKernelComputesMovingDifference) {
  Rng rng(1);
  Conv1d conv(1, 1, 2, Activation::kIdentity, rng);
  auto params = conv.Params();
  // Kernel [-1, 1] computes x[t+1] - x[t].
  params[0]->value(0, 0) = -1.0;
  params[0]->value(0, 1) = 1.0;
  params[1]->value(0, 0) = 0.0;

  math::Matrix input(4, 1);
  input(0, 0) = 1.0;
  input(1, 0) = 3.0;
  input(2, 0) = 6.0;
  input(3, 0) = 10.0;
  math::Matrix out = conv.Forward(input);
  EXPECT_DOUBLE_EQ(out(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(out(2, 0), 4.0);
}

TEST(Conv1dTest, GradCheck) {
  Rng rng(3);
  Conv1d conv(2, 3, 2, Activation::kTanh, rng);
  math::Matrix input(4, 2);
  Rng data_rng(5);
  for (double& v : input.data()) v = data_rng.Uniform(-1, 1);
  math::Matrix target(3, 3);
  for (double& v : target.data()) v = data_rng.Uniform(-1, 1);

  auto loss_value = [&]() {
    math::Matrix out = conv.Forward(input);
    double s = 0.0;
    for (size_t i = 0; i < out.data().size(); ++i) {
      double d = out.data()[i] - target.data()[i];
      s += d * d;
    }
    return s;
  };

  math::Matrix out = conv.Forward(input);
  math::Matrix grad_out(out.rows(), out.cols());
  for (size_t i = 0; i < out.data().size(); ++i) {
    grad_out.data()[i] = 2.0 * (out.data()[i] - target.data()[i]);
  }
  ZeroGrads(conv.Params());
  math::Matrix grad_in = conv.Backward(grad_out);

  const double eps = 1e-6;
  for (Param* p : conv.Params()) {
    for (size_t i = 0; i < p->value.data().size(); ++i) {
      double orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      double up = loss_value();
      p->value.data()[i] = orig - eps;
      double down = loss_value();
      p->value.data()[i] = orig;
      EXPECT_NEAR(p->grad.data()[i], (up - down) / (2.0 * eps), 1e-4);
    }
  }
  for (size_t i = 0; i < input.data().size(); ++i) {
    double orig = input.data()[i];
    input.data()[i] = orig + eps;
    double up = loss_value();
    input.data()[i] = orig - eps;
    double down = loss_value();
    input.data()[i] = orig;
    EXPECT_NEAR(grad_in.data()[i], (up - down) / (2.0 * eps), 1e-4);
  }
}

TEST(LossTest, MseValueAndGradient) {
  LossResult r = MseLoss({1.0, 3.0}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(r.value, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(r.grad[0], 1.0);
  EXPECT_DOUBLE_EQ(r.grad[1], 2.0);
}

TEST(LossTest, HuberQuadraticInside) {
  LossResult r = HuberLoss({0.5}, {0.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 0.125);
  EXPECT_DOUBLE_EQ(r.grad[0], 0.5);
}

TEST(LossTest, HuberLinearOutside) {
  LossResult r = HuberLoss({3.0}, {0.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 2.5);
  EXPECT_DOUBLE_EQ(r.grad[0], 1.0);
}

}  // namespace
}  // namespace eadrl::nn
