#include "rl/env.h"

#include <cmath>

#include <gtest/gtest.h>

namespace eadrl::rl {
namespace {

// 6 time steps, 2 models: model 0 is perfect, model 1 is off by +2.
EnsembleEnv MakePerfectVsBiasedEnv(RewardType reward) {
  math::Vec actuals{1, 2, 3, 4, 5, 6};
  math::Matrix preds(6, 2);
  for (size_t t = 0; t < 6; ++t) {
    preds(t, 0) = actuals[t];
    preds(t, 1) = actuals[t] + 2.0;
  }
  return EnsembleEnv(preds, actuals, /*omega=*/2, reward);
}

TEST(EnvTest, Dimensions) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  EXPECT_EQ(env.state_dim(), 2u);
  EXPECT_EQ(env.action_dim(), 2u);
  EXPECT_EQ(env.horizon(), 4u);
}

TEST(EnvTest, ResetReturnsWindowStandardizedUniformEnsemble) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  math::Vec s = env.Reset();
  ASSERT_EQ(s.size(), 2u);
  // Uniform ensemble outputs: (1+3)/2=2, (2+4)/2=3; standardized by the
  // window's own statistics (mean 2.5, population stddev 0.5), so the state
  // encodes the recent *shape* independent of the series level.
  EXPECT_NEAR(s[0], -1.0, 1e-9);
  EXPECT_NEAR(s[1], 1.0, 1e-9);
}

TEST(EnvTest, RankRewardMaxWhenWeightsOnBestModel) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  env.Reset();
  // All weight on the perfect model: ensemble ties with best => rank 1,
  // reward = m + 1 - 1 = 2.
  double r = env.RewardAt(2, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(EnvTest, RankRewardLowWhenWeightsOnWorstModel) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  env.Reset();
  // All weight on the biased model: ensemble error 2, beaten by model 0
  // (error 0) and tied with model 1 => rank 2, reward = 1.
  double r = env.RewardAt(2, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(EnvTest, RankRewardIntermediateForMixedWeights) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  env.Reset();
  // Equal weights: ensemble error 1 < 2, beats model 1, loses to model 0.
  double r = env.RewardAt(2, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(r, 1.0);  // rank 2 of 3.
}

TEST(EnvTest, NrmseRewardHigherForBetterWeights) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kOneMinusNrmse);
  env.Reset();
  double good = env.RewardAt(2, {1.0, 0.0});
  double bad = env.RewardAt(2, {0.0, 1.0});
  EXPECT_GT(good, bad);
  EXPECT_DOUBLE_EQ(good, 1.0);  // zero error => 1 - 0.
}

TEST(EnvTest, StepAdvancesAndTerminates) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  env.Reset();
  size_t steps = 0;
  bool done = false;
  while (!done) {
    auto sr = env.Step({0.5, 0.5});
    done = sr.done;
    ++steps;
    ASSERT_LE(steps, 10u);
  }
  EXPECT_EQ(steps, env.horizon());
}

TEST(EnvTest, TransitionIsDeterministicSlide) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  env.Reset();
  auto sr = env.Step({1.0, 0.0});
  // Next window drops the oldest ensemble output (2) and appends the new
  // prediction (weights (1,0) => prediction = actual = 3 at t=2), giving
  // raw window (3, 3); a flat window standardizes to zeros (stddev floored
  // by the validation stddev).
  EXPECT_NEAR(sr.next_state[0], 0.0, 1e-9);
  EXPECT_NEAR(sr.next_state[1], 0.0, 1e-9);
  EXPECT_FALSE(sr.done);
}

TEST(EnvTest, PeekMatchesStepWithoutAdvancing) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  env.Reset();
  auto peeked = env.Peek({0.5, 0.5});
  auto stepped = env.Step({0.5, 0.5});
  EXPECT_DOUBLE_EQ(peeked.reward, stepped.reward);
  EXPECT_EQ(peeked.next_state, stepped.next_state);
  EXPECT_EQ(peeked.done, stepped.done);
}

TEST(EnvTest, PeekDoesNotMutateState) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  env.Reset();
  env.Peek({1.0, 0.0});
  env.Peek({0.0, 1.0});
  // Stepping after peeks gives the same result as stepping immediately.
  EnsembleEnv fresh = MakePerfectVsBiasedEnv(RewardType::kRank);
  fresh.Reset();
  auto a = env.Step({0.5, 0.5});
  auto b = fresh.Step({0.5, 0.5});
  EXPECT_DOUBLE_EQ(a.reward, b.reward);
  EXPECT_EQ(a.next_state, b.next_state);
}

TEST(EnvTest, SecondEpisodeIdenticalToFirst) {
  EnsembleEnv env = MakePerfectVsBiasedEnv(RewardType::kRank);
  math::Vec s1 = env.Reset();
  env.Step({0.5, 0.5});
  math::Vec s2 = env.Reset();
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace eadrl::rl
