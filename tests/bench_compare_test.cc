#include "obs/bench_compare.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "chk/chk.h"
#include "common/json.h"

namespace eadrl::obs {
namespace {

BenchEntry MakeEntry(const std::string& name, double real_ns,
                     uint64_t iterations = 100) {
  BenchEntry entry;
  entry.name = name;
  entry.real_time_ns = real_ns;
  entry.cpu_time_ns = real_ns;
  entry.iterations = iterations;
  return entry;
}

BenchSnapshot MakeSnapshot(std::vector<BenchEntry> entries) {
  BenchSnapshot snapshot;
  snapshot.label = "test";
  snapshot.host.hardware_threads = 4;
  snapshot.host.build_type = "Release";
  snapshot.entries = std::move(entries);
  return snapshot;
}

TEST(ParseGoogleBenchmarkJson, ExtractsRowsAndSkipsAggregates) {
  const std::string text = R"({
    "context": {"num_cpus": 1},
    "benchmarks": [
      {"name": "BM_A/16", "real_time": 120.5, "cpu_time": 119.0,
       "iterations": 1000, "time_unit": "ns"},
      {"name": "BM_A/16_mean", "aggregate_name": "mean", "real_time": 121.0,
       "cpu_time": 119.5, "iterations": 3, "time_unit": "ns"},
      {"name": "BM_B", "real_time": 2.5, "cpu_time": 2.0,
       "iterations": 50, "time_unit": "ms"}
    ]})";
  auto entries = ParseGoogleBenchmarkJson(text, "micro/");
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "micro/BM_A/16");
  EXPECT_DOUBLE_EQ((*entries)[0].real_time_ns, 120.5);
  EXPECT_EQ((*entries)[0].iterations, 1000u);
  // ms rows are normalized to ns.
  EXPECT_EQ((*entries)[1].name, "micro/BM_B");
  EXPECT_DOUBLE_EQ((*entries)[1].real_time_ns, 2.5e6);
  EXPECT_DOUBLE_EQ((*entries)[1].cpu_time_ns, 2.0e6);
}

TEST(ParseGoogleBenchmarkJson, RejectsDocumentsWithoutBenchmarks) {
  EXPECT_EQ(ParseGoogleBenchmarkJson(R"({"context": {}})", "").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(ParseGoogleBenchmarkJson("not json", "").ok());
  EXPECT_EQ(ParseGoogleBenchmarkJson(
                R"({"benchmarks": [{"real_time": 1.0, "cpu_time": 1.0}]})", "")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(BenchSnapshotJson, RoundTripsEveryField) {
  BenchSnapshot snapshot = MakeSnapshot(
      {MakeEntry("micro/BM_A", 100.0), MakeEntry("macro/suite", 5e9, 1)});
  snapshot.host.default_threads = 2;
  snapshot.host.sanitizer = "thread";
  snapshot.host.checks = true;
  snapshot.host.compiler = "g++ \"quoted\"";
  snapshot.resources.peak_rss_bytes = 1u << 30;
  snapshot.resources.minor_faults = 42;
  snapshot.resources.user_cpu_seconds = 1.25;
  snapshot.allocs = {7, 8192};
  snapshot.spans.push_back({"critic_update", 10, 1.5, 1.0, 100, 4096});

  auto parsed = ParseBenchSnapshot(BenchSnapshotToJson(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema_version, kBenchSchemaVersion);
  EXPECT_EQ(parsed->label, "test");
  EXPECT_EQ(parsed->host.hardware_threads, 4u);
  EXPECT_EQ(parsed->host.default_threads, 2u);
  EXPECT_EQ(parsed->host.build_type, "Release");
  EXPECT_EQ(parsed->host.sanitizer, "thread");
  EXPECT_TRUE(parsed->host.checks);
  EXPECT_EQ(parsed->host.compiler, "g++ \"quoted\"");
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].name, "micro/BM_A");
  EXPECT_DOUBLE_EQ(parsed->entries[1].real_time_ns, 5e9);
  EXPECT_EQ(parsed->resources.peak_rss_bytes, 1u << 30);
  EXPECT_EQ(parsed->resources.minor_faults, 42u);
  EXPECT_DOUBLE_EQ(parsed->resources.user_cpu_seconds, 1.25);
  EXPECT_EQ(parsed->allocs.count, 7u);
  EXPECT_EQ(parsed->allocs.bytes, 8192u);
  ASSERT_EQ(parsed->spans.size(), 1u);
  EXPECT_EQ(parsed->spans[0].name, "critic_update");
  EXPECT_EQ(parsed->spans[0].alloc_bytes, 4096u);
}

TEST(BenchSnapshotJson, RejectsWrongSchemaVersion) {
  BenchSnapshot snapshot = MakeSnapshot({MakeEntry("a", 1.0)});
  std::string json = BenchSnapshotToJson(snapshot);
  const std::string needle = "\"schema_version\":1";
  const size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, needle.size(), "\"schema_version\":999");
  auto parsed = ParseBenchSnapshot(json);
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(BenchSnapshotJson, MissingBaselineFileIsNotFound) {
  auto missing = LoadBenchSnapshot("/nonexistent/dir/BENCH_0.json");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(BenchSnapshotJson, WriteThenLoadRoundTrips) {
  BenchSnapshot snapshot = MakeSnapshot({MakeEntry("a", 10.0)});
  const std::string path =
      ::testing::TempDir() + "/bench_compare_test_snapshot.json";
  ASSERT_TRUE(WriteBenchSnapshot(snapshot, path).ok());
  auto loaded = LoadBenchSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->entries.size(), 1u);
  EXPECT_EQ(loaded->entries[0].name, "a");
  std::remove(path.c_str());
}

TEST(CompareBenchSnapshots, ClassifiesAroundTheNoiseThreshold) {
  // Threshold 0.5 so the boundary ratios are exact in binary floating point.
  BenchCompareOptions options;
  options.noise_threshold = 0.5;
  BenchSnapshot baseline = MakeSnapshot({
      MakeEntry("exact_boundary", 100.0),
      MakeEntry("regressed", 100.0),
      MakeEntry("improved", 100.0),
      MakeEntry("steady", 100.0),
  });
  BenchSnapshot current = MakeSnapshot({
      MakeEntry("exact_boundary", 150.0),  // ratio 1.5 == 1 + t: unchanged.
      MakeEntry("regressed", 151.0),       // just past the threshold.
      MakeEntry("improved", 49.0),         // ratio 0.49 < 1 - t.
      MakeEntry("steady", 100.0),
  });
  BenchComparison comparison =
      CompareBenchSnapshots(baseline, current, options);
  ASSERT_EQ(comparison.regressions.size(), 1u);
  EXPECT_EQ(comparison.regressions[0].name, "regressed");
  EXPECT_DOUBLE_EQ(comparison.regressions[0].ratio, 1.51);
  ASSERT_EQ(comparison.improvements.size(), 1u);
  EXPECT_EQ(comparison.improvements[0].name, "improved");
  EXPECT_EQ(comparison.unchanged.size(), 2u);
  EXPECT_TRUE(comparison.HasRegressions());
}

TEST(CompareBenchSnapshots, OneSidedBenchmarksAreReportedNotCompared) {
  BenchSnapshot baseline = MakeSnapshot(
      {MakeEntry("shared", 100.0), MakeEntry("removed_bench", 50.0)});
  BenchSnapshot current =
      MakeSnapshot({MakeEntry("shared", 100.0), MakeEntry("new_bench", 70.0)});
  BenchComparison comparison = CompareBenchSnapshots(baseline, current);
  ASSERT_EQ(comparison.only_in_baseline.size(), 1u);
  EXPECT_EQ(comparison.only_in_baseline[0], "removed_bench");
  ASSERT_EQ(comparison.only_in_current.size(), 1u);
  EXPECT_EQ(comparison.only_in_current[0], "new_bench");
  EXPECT_FALSE(comparison.HasRegressions());
}

TEST(CompareBenchSnapshots, ZeroIterationEntriesAreSkipped) {
  BenchSnapshot baseline = MakeSnapshot(
      {MakeEntry("no_iters", 100.0, 0), MakeEntry("zero_time", 0.0, 10)});
  BenchSnapshot current = MakeSnapshot(
      {MakeEntry("no_iters", 500.0, 100), MakeEntry("zero_time", 5.0, 10)});
  BenchComparison comparison = CompareBenchSnapshots(baseline, current);
  EXPECT_EQ(comparison.skipped.size(), 2u);
  EXPECT_TRUE(comparison.regressions.empty());
  EXPECT_TRUE(comparison.improvements.empty());
}

TEST(CompareBenchSnapshots, RegressionsSortWorstFirst) {
  BenchSnapshot baseline = MakeSnapshot(
      {MakeEntry("mild", 100.0), MakeEntry("severe", 100.0)});
  BenchSnapshot current = MakeSnapshot(
      {MakeEntry("mild", 130.0), MakeEntry("severe", 400.0)});
  BenchComparison comparison = CompareBenchSnapshots(baseline, current);
  ASSERT_EQ(comparison.regressions.size(), 2u);
  EXPECT_EQ(comparison.regressions[0].name, "severe");
  EXPECT_EQ(comparison.regressions[1].name, "mild");
}

TEST(CompareBenchSnapshots, FlagsDifferingHosts) {
  BenchSnapshot baseline = MakeSnapshot({MakeEntry("a", 1.0)});
  BenchSnapshot current = MakeSnapshot({MakeEntry("a", 1.0)});
  current.host.sanitizer = "address";
  EXPECT_TRUE(CompareBenchSnapshots(baseline, current).host_differs);
  current.host.sanitizer = baseline.host.sanitizer;
  EXPECT_FALSE(CompareBenchSnapshots(baseline, current).host_differs);
}

#if EADRL_CHECKS

[[noreturn]] void ThrowHandler(const char* message) {
  throw std::runtime_error(message);
}

class BenchCompareContractTest : public ::testing::Test {
 protected:
  void SetUp() override { chk::SetFailureHandlerForTest(&ThrowHandler); }
  void TearDown() override { chk::SetFailureHandlerForTest(nullptr); }
};

TEST_F(BenchCompareContractTest, NanTimingViolatesTheContract) {
  BenchSnapshot baseline = MakeSnapshot(
      {MakeEntry("bad", std::numeric_limits<double>::quiet_NaN())});
  BenchSnapshot current = MakeSnapshot({MakeEntry("bad", 100.0)});
  EXPECT_THROW(CompareBenchSnapshots(baseline, current), std::runtime_error);
}

TEST_F(BenchCompareContractTest, NegativeTimingViolatesTheContract) {
  BenchSnapshot baseline = MakeSnapshot({MakeEntry("bad", 100.0)});
  BenchSnapshot current = MakeSnapshot({MakeEntry("bad", -1.0)});
  EXPECT_THROW(CompareBenchSnapshots(baseline, current), std::runtime_error);
}

TEST_F(BenchCompareContractTest, NegativeThresholdViolatesTheContract) {
  BenchCompareOptions options;
  options.noise_threshold = -0.1;
  BenchSnapshot snapshot = MakeSnapshot({MakeEntry("a", 1.0)});
  EXPECT_THROW(CompareBenchSnapshots(snapshot, snapshot, options),
               std::runtime_error);
}

#endif  // EADRL_CHECKS

TEST(FormatComparison, JsonOutputIsParseableAndCarriesTheVerdict) {
  BenchSnapshot baseline = MakeSnapshot({MakeEntry("a", 100.0)});
  BenchSnapshot current = MakeSnapshot({MakeEntry("a", 300.0)});
  BenchComparison comparison = CompareBenchSnapshots(baseline, current);
  auto doc = json::Parse(FormatComparisonJson(comparison));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* regressed = doc->Find("regressed");
  ASSERT_NE(regressed, nullptr);
  EXPECT_TRUE(regressed->AsBool());
  const json::Value* regressions = doc->Find("regressions");
  ASSERT_NE(regressions, nullptr);
  ASSERT_EQ(regressions->AsArray().size(), 1u);

  const std::string human = FormatComparisonHuman(comparison);
  EXPECT_NE(human.find("verdict: REGRESSED"), std::string::npos);
  EXPECT_NE(human.find("a"), std::string::npos);
}

}  // namespace
}  // namespace eadrl::obs
