#include "core/combiner.h"

#include <gtest/gtest.h>

namespace eadrl::core {
namespace {

TEST(CombineTest, ConvexCombination) {
  EXPECT_DOUBLE_EQ(Combine({0.5, 0.5}, {2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(Combine({1.0, 0.0}, {2.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(Combine({0.25, 0.75}, {0.0, 8.0}), 6.0);
}

// Minimal WeightedCombiner to pin the default Predict behaviour.
class FixedWeights : public WeightedCombiner {
 public:
  explicit FixedWeights(math::Vec w) : w_(std::move(w)) {}
  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix&, const math::Vec&) override {
    return Status::Ok();
  }
  void Update(const math::Vec&, double) override {}
  math::Vec Weights() const override { return w_; }

 private:
  std::string name_ = "fixed";
  math::Vec w_;
};

TEST(WeightedCombinerTest, PredictUsesWeights) {
  FixedWeights combiner({0.2, 0.3, 0.5});
  EXPECT_DOUBLE_EQ(combiner.Predict({10.0, 10.0, 10.0}), 10.0);
  EXPECT_DOUBLE_EQ(combiner.Predict({0.0, 0.0, 2.0}), 1.0);
}

}  // namespace
}  // namespace eadrl::core
