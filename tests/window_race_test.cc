// Hammers the PR-10 observability hot paths from thread-pool workers:
// windowed counters/histograms rotating on tiny real-clock ticks while being
// observed and snapshotted, the labeled drill-down family under label churn,
// SLO record/evaluate from many threads, and a running MetricsExporter
// racing the writers. Cumulative totals are exact by contract and asserted;
// windowed totals are racy by design (bounded one-observation skew per
// rotation) and only sanity-bounded. The real teeth are under
// tools/check.sh's tsan stage, where any data race here becomes a report.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/cardinality.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/window.h"
#include "par/parallel.h"
#include "par/thread_pool.h"

namespace eadrl::obs {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kTasks = 64;
constexpr size_t kOpsPerTask = 400;

/// Real monotonic clock with ~0.5 ms ticks: rotations happen constantly
/// while workers observe, so this run exercises the observe/rotate race.
WindowOptions TinyTickWindow() {
  WindowOptions options;
  options.buckets = 4;
  options.tick_seconds = 0.0005;
  return options;
}

TEST(WindowRaceTest, WindowedCounterCumulativeExactUnderContention) {
  par::ThreadPool pool(kThreads);
  WindowedCounter counter(TinyTickWindow());
  par::ParallelFor(
      0, kTasks,
      [&](size_t) {
        for (size_t i = 0; i < kOpsPerTask; ++i) {
          counter.Inc();
          if (i % 64 == 0) (void)counter.Snapshot();
        }
      },
      {1, &pool});
  const WindowedCounterSnapshot snap = counter.Snapshot();
  EXPECT_EQ(snap.cumulative, static_cast<double>(kTasks * kOpsPerTask));
  // Windowed total can lag cumulative (old sub-windows expired) but a slot
  // can never invent observations beyond the bounded rotation skew.
  EXPECT_LE(snap.total, snap.cumulative + static_cast<double>(kThreads));
}

TEST(WindowRaceTest, WindowedHistogramCumulativeExactUnderContention) {
  par::ThreadPool pool(kThreads);
  WindowedHistogram hist(TinyTickWindow(), {});
  par::ParallelFor(
      0, kTasks,
      [&](size_t task) {
        for (size_t i = 0; i < kOpsPerTask; ++i) {
          hist.Observe(1e-5 * static_cast<double>(task + 1));
          if (i % 64 == 0) (void)hist.Snapshot();
        }
      },
      {1, &pool});
  EXPECT_EQ(hist.CumulativeCount(), kTasks * kOpsPerTask);
  const WindowedHistogramSnapshot snap = hist.Snapshot();
  EXPECT_LE(snap.values.count, kTasks * kOpsPerTask + kThreads);
}

TEST(WindowRaceTest, LabeledFamilyBoundedUnderConcurrentChurn) {
  par::ThreadPool pool(kThreads);
  LabeledWindowedFamilyOptions options;
  options.name = "race_family";
  options.label_key = "tenant";
  options.max_labels = 16;
  options.window = TinyTickWindow();
  LabeledWindowedFamily family(options);
  par::ParallelFor(
      0, kTasks,
      [&](size_t task) {
        for (size_t i = 0; i < kOpsPerTask; ++i) {
          // A mix of stable labels (always tracked) and churning one-shot
          // labels (drive the overflow/eviction paths).
          family.Observe("stable-" + std::to_string(task % 8), 0.001);
          if (i % 16 == 0) {
            family.Observe(
                "churn-" + std::to_string(task * kOpsPerTask + i), 0.001);
          }
          if (i % 128 == 0) (void)family.Snapshot(4);
        }
      },
      {1, &pool});
  EXPECT_LE(family.TrackedLabels(), 16u);
}

TEST(WindowRaceTest, SloRecordEvaluateFromManyThreads) {
  par::ThreadPool pool(kThreads);
  SloTrackerOptions options;
  options.objectives.push_back({"latency", 0.01, 0.99});
  options.objectives.push_back({"availability", 0.0, 0.999});
  options.long_window = TinyTickWindow();
  options.short_window = TinyTickWindow();
  options.emit_telemetry = false;  // no sink installed; exercise state only.
  SloTracker tracker(options);
  par::ParallelFor(
      0, kTasks,
      [&](size_t task) {
        for (size_t i = 0; i < kOpsPerTask; ++i) {
          tracker.RecordLatency(0, (i % 3 == 0) ? 0.5 : 0.001);
          tracker.Record(1, i % 7 != 0);
          if (i % 32 == 0) tracker.Evaluate();
        }
        (void)task;
      },
      {1, &pool});
  tracker.Evaluate();
  const SloReport report = tracker.Report();
  EXPECT_EQ(report.objectives[0].good + report.objectives[0].bad,
            kTasks * kOpsPerTask);
  EXPECT_EQ(report.objectives[1].good + report.objectives[1].bad,
            kTasks * kOpsPerTask);
}

TEST(WindowRaceTest, ExporterRacesLiveWriters) {
  const std::string path = ::testing::TempDir() + "/window_race_metrics.prom";
  par::ThreadPool pool(kThreads);
  WindowedCounter counter(TinyTickWindow());
  WindowedHistogram hist(TinyTickWindow(), {});
  LabeledWindowedFamilyOptions fam_options;
  fam_options.name = "race_export_family";
  fam_options.max_labels = 8;
  fam_options.window = TinyTickWindow();
  LabeledWindowedFamily family(fam_options);

  MetricsExporter::Options options;
  options.path = path;
  options.interval_seconds = 0.002;  // export as fast as possible.
  MetricsExporter exporter(options);
  exporter.AddSection({"race", nullptr, [&](std::string* out) {
                         const WindowedCounterSnapshot c = counter.Snapshot();
                         const WindowedHistogramSnapshot h = hist.Snapshot();
                         char line[160];
                         std::snprintf(line, sizeof(line),
                                       "# TYPE race_rate gauge\nrace_rate "
                                       "%.9g\nrace_p99 %.9g\n",
                                       c.Rate(), h.values.Quantile(0.99));
                         out->append(line);
                         family.AppendPrometheus(out, 4);
                       }});
  exporter.Start();
  par::ParallelFor(
      0, kTasks,
      [&](size_t task) {
        for (size_t i = 0; i < kOpsPerTask; ++i) {
          counter.Inc();
          hist.Observe(1e-4);
          family.Observe("t-" + std::to_string(task % 12), 1e-4);
        }
      },
      {1, &pool});
  exporter.Stop();
  EXPECT_GE(exporter.exports(), 1u);
  EXPECT_EQ(exporter.failures(), 0u);
  EXPECT_EQ(counter.Cumulative(), static_cast<double>(kTasks * kOpsPerTask));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eadrl::obs
