#include "ts/drift.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eadrl::ts {
namespace {

TEST(PageHinkleyTest, NoFalseAlarmOnStationaryNoise) {
  Rng rng(1);
  PageHinkley ph(/*delta=*/0.1, /*lambda=*/50.0);
  int alarms = 0;
  for (int i = 0; i < 2000; ++i) {
    if (ph.Update(rng.Normal(0.0, 1.0))) ++alarms;
  }
  EXPECT_EQ(alarms, 0);
}

TEST(PageHinkleyTest, DetectsMeanIncrease) {
  Rng rng(2);
  PageHinkley ph(/*delta=*/0.1, /*lambda=*/50.0);
  bool detected = false;
  for (int i = 0; i < 300; ++i) ph.Update(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 300 && !detected; ++i) {
    detected = ph.Update(rng.Normal(5.0, 1.0));
  }
  EXPECT_TRUE(detected);
}

TEST(PageHinkleyTest, ResetsAfterDetection) {
  Rng rng(3);
  PageHinkley ph(0.05, 10.0);
  for (int i = 0; i < 100; ++i) ph.Update(rng.Normal(0.0, 0.5));
  bool detected = false;
  for (int i = 0; i < 200 && !detected; ++i) {
    detected = ph.Update(rng.Normal(4.0, 0.5));
  }
  ASSERT_TRUE(detected);
  EXPECT_EQ(ph.num_observations(), 0u);
  EXPECT_DOUBLE_EQ(ph.cumulative(), 0.0);
}

TEST(WindowDriftTest, QuietOnStationary) {
  Rng rng(4);
  WindowDriftDetector d(60, 4.0);
  int alarms = 0;
  for (int i = 0; i < 3000; ++i) {
    if (d.Update(rng.Normal(0.0, 1.0))) ++alarms;
  }
  EXPECT_LE(alarms, 1);  // rare false positives tolerated.
}

TEST(WindowDriftTest, DetectsLevelShift) {
  Rng rng(5);
  WindowDriftDetector d(60, 3.0);
  for (int i = 0; i < 100; ++i) d.Update(rng.Normal(0.0, 1.0));
  bool detected = false;
  for (int i = 0; i < 100 && !detected; ++i) {
    detected = d.Update(rng.Normal(8.0, 1.0));
  }
  EXPECT_TRUE(detected);
}

TEST(WindowDriftTest, NeedsFullWindow) {
  WindowDriftDetector d(50, 1.0);
  // Fewer observations than the window can never trigger.
  for (int i = 0; i < 49; ++i) {
    EXPECT_FALSE(d.Update(i < 25 ? 0.0 : 100.0));
  }
}

}  // namespace
}  // namespace eadrl::ts
