#include "par/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "par/thread_pool.h"

namespace eadrl::par {
namespace {

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, [&](size_t) { calls.fetch_add(1); }, {1, &pool});
  ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); }, {1, &pool});
  ParallelFor(7, 3, [&](size_t) { calls.fetch_add(1); }, {1, &pool});
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInlineInOrder) {
  ThreadPool pool(4);
  std::vector<size_t> visited;
  ParallelFor(2, 6, [&](size_t i) { visited.push_back(i); }, {100, &pool});
  // Range <= grain degenerates to the plain ascending loop on the caller.
  EXPECT_EQ(visited, (std::vector<size_t>{2, 3, 4, 5}));
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  for (auto& v : visits) v.store(0);
  ParallelFor(0, kN, [&](size_t i) { visits[i].fetch_add(1); }, {7, &pool});
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // More outer tasks than workers, each fanning out again: the inner Waits
  // run on pool workers and must help with queued tasks instead of blocking.
  ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  ParallelFor(
      0, 8,
      [&](size_t) {
        ParallelFor(0, 8, [&](size_t) { inner_calls.fetch_add(1); },
                    {1, &pool});
      },
      {1, &pool});
  EXPECT_EQ(inner_calls.load(), 64);
}

TEST(ParallelForTest, ExceptionFromWorkerReachesCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(
          0, 100,
          [&](size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          {1, &pool}),
      std::runtime_error);
  // The pool survives a throwing task and keeps running work.
  std::atomic<int> calls{0};
  ParallelFor(0, 50, [&](size_t) { calls.fetch_add(1); }, {1, &pool});
  EXPECT_EQ(calls.load(), 50);
}

TEST(ParallelForTest, SerialPoolExceptionAlsoPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      ParallelFor(
          0, 10,
          [&](size_t i) {
            if (i == 3) throw std::runtime_error("serial boom");
          },
          {1, &pool}),
      std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        done.fetch_add(1);
      });
    }
    // Destructor: graceful shutdown must run every queued task first.
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, SerialPoolRunsSubmitInline) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.parallel());
  EXPECT_EQ(pool.num_workers(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::thread::id runner;
  pool.Submit([&runner] { runner = std::this_thread::get_id(); });
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(TaskGroupTest, HeterogeneousFanOut) {
  ThreadPool pool(3);
  TaskGroup group(&pool);
  std::atomic<int> sum{0};
  group.Run([&] { sum.fetch_add(1); });
  group.Run([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sum.fetch_add(10);
  });
  group.Run([&] { sum.fetch_add(100); });
  group.Wait();
  EXPECT_EQ(sum.load(), 111);

  // The group is reusable after Wait.
  group.Run([&] { sum.fetch_add(1000); });
  group.Wait();
  EXPECT_EQ(sum.load(), 1111);
}

TEST(TaskGroupTest, LaterTasksStillRunAfterAThrow) {
  ThreadPool pool(1);  // serial: deterministic run order.
  TaskGroup group(&pool);
  std::atomic<int> calls{0};
  group.Run([&] { throw std::runtime_error("first"); });
  group.Run([&] { calls.fetch_add(1); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  ThreadPool pool(4);
  std::vector<int> out =
      ParallelMap<int>(256, [](size_t i) { return static_cast<int>(i) * 3; },
                       {1, &pool});
  ASSERT_EQ(out.size(), 256u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(TaskSeedTest, DeterministicAndOrderFree) {
  // Same (base, index) always gives the same seed; different indices and
  // bases give different seeds (splitmix64 is a bijection-based mix).
  EXPECT_EQ(TaskSeed(42, 7), TaskSeed(42, 7));
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < 100; ++i) seeds.push_back(TaskSeed(42, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(TaskSeed(1, 0), TaskSeed(2, 0));
}

TEST(TaskGroupTest, CompletionRacingGroupDestructionIsSafe) {
  // Regression for a use-after-free: the last task's completion signal used
  // to touch the group's mutex/cv after decrementing the count, racing a
  // waiter that saw zero and destroyed the stack-allocated group. Tiny tasks
  // plus immediate destruction maximize that window; TSan (tools/check.sh)
  // gives this test its teeth.
  ThreadPool pool(4);
  for (int round = 0; round < 500; ++round) {
    std::atomic<int> calls{0};
    {
      TaskGroup group(&pool);
      for (int t = 0; t < 4; ++t) {
        group.Run([&calls] { calls.fetch_add(1); });
      }
      group.Wait();
    }  // group destroyed the instant Wait returns.
    EXPECT_EQ(calls.load(), 4);
  }
}

TEST(ParseThreadCountTest, AcceptsPositiveIntegersOnly) {
  EXPECT_EQ(ParseThreadCount("4", 9), 4u);
  EXPECT_EQ(ParseThreadCount("1", 9), 1u);
  // Missing, empty, garbage, trailing garbage, zero, negative: fallback.
  EXPECT_EQ(ParseThreadCount(nullptr, 9), 9u);
  EXPECT_EQ(ParseThreadCount("", 9), 9u);
  EXPECT_EQ(ParseThreadCount("lots", 9), 9u);
  EXPECT_EQ(ParseThreadCount("8x", 9), 9u);
  EXPECT_EQ(ParseThreadCount("0", 9), 9u);
  EXPECT_EQ(ParseThreadCount("-2", 9), 9u);
}

TEST(ParseThreadCountTest, ClampsHugeValues) {
  // A typo like EADRL_THREADS=1000000 must not try to spawn a million
  // threads: values above 4x hardware concurrency are clamped to it.
  const size_t huge = ParseThreadCount("1000000", 1);
  EXPECT_GE(huge, 1u);
  EXPECT_LE(huge, 4 * static_cast<size_t>(std::max(
                          1u, std::thread::hardware_concurrency())));
}

TEST(DefaultPoolTest, SetDefaultThreadsRebuildsThePool) {
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3u);
  EXPECT_TRUE(DefaultPool().parallel());
  EXPECT_EQ(DefaultPool().num_workers(), 3u);

  SetDefaultThreads(1);
  EXPECT_EQ(DefaultThreads(), 1u);
  EXPECT_FALSE(DefaultPool().parallel());
}

}  // namespace
}  // namespace eadrl::par
