#include "exp/experiment.h"

#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "par/thread_pool.h"
#include "ts/datasets.h"

namespace eadrl::exp {
namespace {

ExperimentOptions FastOptions() {
  ExperimentOptions opt;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 3;
  opt.eadrl.omega = 5;
  opt.eadrl.max_episodes = 8;
  opt.eadrl.max_iterations = 40;
  opt.eadrl.actor_hidden = {16};
  opt.eadrl.critic_hidden = {16};
  opt.eadrl.batch_size = 8;
  opt.eadrl.warmup_transitions = 16;
  opt.seed = 42;
  return opt;
}

TEST(ExperimentTest, PreparePoolShapes) {
  auto series = ts::MakeDataset(2, 42, 240);
  ASSERT_TRUE(series.ok());
  PoolRun pool = PreparePool(*series, FastOptions());

  EXPECT_GE(pool.model_names.size(), 8u);
  EXPECT_EQ(pool.val_preds.cols(), pool.model_names.size());
  EXPECT_EQ(pool.test_preds.cols(), pool.model_names.size());
  EXPECT_EQ(pool.val_preds.rows(), pool.val_actuals.size());
  EXPECT_EQ(pool.test_preds.rows(), pool.test_actuals.size());
  // 75/25 outer split of 240 -> 60 test points.
  EXPECT_EQ(pool.test_actuals.size(), 60u);
  for (double v : pool.val_preds.data()) EXPECT_TRUE(std::isfinite(v));
  for (double v : pool.test_preds.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(ExperimentTest, CombinerSuiteHasElevenMethods) {
  auto suite = MakeCombinerSuite(FastOptions());
  EXPECT_EQ(suite.size(), 11u);
  std::set<std::string> names;
  for (const auto& combiner : suite) names.insert(combiner->name());
  for (const char* expected :
       {"SE", "SWE", "EWA", "FS", "OGD", "MLpol", "Stacking", "Clus",
        "Top.sel", "DEMSC", "EA-DRL"}) {
    EXPECT_TRUE(names.count(expected)) << "missing " << expected;
  }
}

TEST(ExperimentTest, RunDatasetProducesFiniteResults) {
  auto series = ts::MakeDataset(2, 42, 240);
  ASSERT_TRUE(series.ok());
  DatasetResult result = RunDataset(*series, FastOptions());

  // 11 combiners + 5 standalone models.
  EXPECT_GE(result.methods.size(), 14u);
  for (const MethodRun& run : result.methods) {
    EXPECT_TRUE(std::isfinite(run.rmse)) << run.name;
    EXPECT_GT(run.rmse, 0.0) << run.name;
    EXPECT_GE(run.runtime_seconds, 0.0) << run.name;
    EXPECT_EQ(run.squared_errors.size(), 60u) << run.name;
  }
}

TEST(ExperimentTest, CombinersCompetitiveWithWorstSingle) {
  auto series = ts::MakeDataset(15, 42, 240);
  ASSERT_TRUE(series.ok());
  ExperimentOptions opt = FastOptions();
  opt.include_standalone = false;
  PoolRun pool = PreparePool(*series, opt);

  // Worst single model RMSE on the test segment.
  double worst = 0.0;
  for (size_t m = 0; m < pool.model_names.size(); ++m) {
    double sse = 0.0;
    for (size_t t = 0; t < pool.test_actuals.size(); ++t) {
      double d = pool.test_preds(t, m) - pool.test_actuals[t];
      sse += d * d;
    }
    worst = std::max(worst,
                     std::sqrt(sse / static_cast<double>(
                                         pool.test_actuals.size())));
  }

  for (auto& combiner : MakeCombinerSuite(opt)) {
    MethodRun run = RunCombiner(combiner.get(), pool);
    EXPECT_LT(run.rmse, worst * 1.5) << run.name;
  }
}

TEST(ExperimentTest, SuiteTelemetryCarriesDatasetIdentity) {
  // RunSuite interleaves datasets on pool workers; every event emitted from
  // inside a dataset run (episode, ddpg_update, checkpoint, method_run, ...)
  // must still say which dataset it belongs to.
  auto a = ts::MakeDataset(2, 42, 240);
  auto b = ts::MakeDataset(3, 42, 240);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExperimentOptions opt = FastOptions();
  opt.include_standalone = false;

  obs::CollectingSink sink;
  obs::SetTelemetrySink(&sink);
  par::ThreadPool pool(4);
  RunSuite({*a, *b}, opt, &pool);
  obs::SetTelemetrySink(nullptr);

  std::set<std::string> labeled_kinds;
  std::set<std::string> seen_datasets;
  for (const obs::TelemetryEvent& e : sink.TakeEvents()) {
    if (std::string(e.kind) == "suite_run") continue;  // cross-dataset.
    bool found = false;
    for (const obs::TelemetryField& f : e.fields) {
      if (std::string(f.key) == "dataset") {
        found = true;
        seen_datasets.insert(f.str);
      }
    }
    EXPECT_TRUE(found) << "event without dataset label: " << e.kind;
    labeled_kinds.insert(e.kind);
  }
  EXPECT_EQ(seen_datasets,
            (std::set<std::string>{a->name(), b->name()}));
  EXPECT_TRUE(labeled_kinds.count("episode"));
  EXPECT_TRUE(labeled_kinds.count("ddpg_update"));
  EXPECT_TRUE(labeled_kinds.count("method_run"));
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  auto series = ts::MakeDataset(3, 42, 240);
  ASSERT_TRUE(series.ok());
  ExperimentOptions opt = FastOptions();
  opt.include_standalone = false;
  DatasetResult a = RunDataset(*series, opt);
  DatasetResult b = RunDataset(*series, opt);
  ASSERT_EQ(a.methods.size(), b.methods.size());
  for (size_t i = 0; i < a.methods.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.methods[i].rmse, b.methods[i].rmse)
        << a.methods[i].name;
  }
}

}  // namespace
}  // namespace eadrl::exp
