#include "chk/chk.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chk_fixtures/chk_fixtures.h"
#include "math/matrix.h"
#include "rl/ddpg.h"
#include "rl/replay_buffer.h"
#include "rl/transition.h"

namespace eadrl {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

[[noreturn]] void ThrowHandler(const char* message) {
  throw std::runtime_error(message);
}

/// Installs the throwing failure handler for the duration of each test, so a
/// violated contract becomes a catchable exception instead of an abort.
class ChkTest : public ::testing::Test {
 protected:
  void SetUp() override { chk::SetFailureHandlerForTest(&ThrowHandler); }
  void TearDown() override { chk::SetFailureHandlerForTest(nullptr); }
};

/// Runs `fn`, expecting a contract violation whose message contains every
/// string in `needles`.
template <typename Fn>
void ExpectViolation(Fn fn, const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected a contract violation";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("contract violated"), std::string::npos)
        << message;
    for (const std::string& needle : needles) {
      EXPECT_NE(message.find(needle), std::string::npos)
          << "missing \"" << needle << "\" in: " << message;
    }
  }
}

TEST_F(ChkTest, ForcedModesOverrideBuildConfig) {
  EXPECT_TRUE(chk_testing::ForcedOnEnabled());
  EXPECT_FALSE(chk_testing::ForcedOffEnabled());
}

TEST_F(ChkTest, SimplexViolationNamesCheckAndFailure) {
  // Sum is 1.8: a valid-elementwise vector that is off the simplex.
  ExpectViolation([] { chk_testing::ForcedOnSimplex({0.9, 0.9}); },
                  {"forced-on simplex", "sum"});
  // A negative weight is caught element-wise.
  ExpectViolation([] { chk_testing::ForcedOnSimplex({1.5, -0.5}); },
                  {"forced-on simplex", "weight"});
}

TEST_F(ChkTest, FiniteViolationNamesOffendingElement) {
  ExpectViolation([] { chk_testing::ForcedOnFinite({0.0, kNan, 2.0}); },
                  {"forced-on finite", "element 1"});
  ExpectViolation(
      [] {
        chk_testing::ForcedOnFinite(
            {std::numeric_limits<double>::infinity()});
      },
      {"forced-on finite", "element 0"});
}

TEST_F(ChkTest, BoundAndRangeViolations) {
  ExpectViolation([] { chk_testing::ForcedOnBound(5, 5); },
                  {"forced-on bound", "index 5", "[0, 5)"});
  ExpectViolation([] { chk_testing::ForcedOnRange(1.5, 0.0, 1.0); },
                  {"forced-on range"});
  // NaN is outside every range.
  ExpectViolation([] { chk_testing::ForcedOnRange(kNan, 0.0, 1.0); },
                  {"forced-on range"});
}

TEST_F(ChkTest, ValidInputsPassSilently) {
  chk_testing::ForcedOnSimplex({0.25, 0.25, 0.5});
  chk_testing::ForcedOnFinite({1.0, -2.0, 0.0});
  chk_testing::ForcedOnBound(4, 5);
  chk_testing::ForcedOnRange(0.5, 0.0, 1.0);
}

TEST_F(ChkTest, DisabledContractsAreInert) {
  // Garbage input: must be a no-op in the forced-off translation unit.
  chk_testing::ForcedOffSimplex({kNan, -3.0, 7.0});
  // The zero-cost guarantee: a disabled contract never evaluates its
  // argument expressions.
  EXPECT_FALSE(chk_testing::ForcedOffEvaluatesArguments());
}

// ---------------------------------------------------------------------------
// Library integration: the contracts wired through rl/ fire with messages
// naming the offending stage. These depend on how the library itself was
// compiled, so they skip when the build configured EADRL_CHECKS=OFF.
// ---------------------------------------------------------------------------

TEST_F(ChkTest, ReplayBufferRejectsOffSimplexAction) {
  if (!chk::Enabled()) {
    GTEST_SKIP() << "library compiled with EADRL_CHECKS=OFF";
  }
  rl::ReplayBuffer buffer(8);
  rl::Transition t;
  t.state = {0.0};
  t.next_state = {0.0};
  t.reward = 0.0;
  t.action = {0.9, 0.9};  // off the simplex
  ExpectViolation([&] { buffer.Add(std::move(t)); },
                  {"ReplayBuffer::Add action"});
}

TEST_F(ChkTest, NanPoisonedActorWeightsAbortNamingStage) {
  if (!chk::Enabled()) {
    GTEST_SKIP() << "library compiled with EADRL_CHECKS=OFF";
  }
  rl::DdpgConfig config;
  config.state_dim = 3;
  config.action_dim = 2;
  config.actor_hidden = {4};
  config.critic_hidden = {4};
  rl::DdpgAgent agent(config);

  std::vector<math::Matrix> weights = agent.ActorWeights();
  ASSERT_FALSE(weights.empty());
  ASSERT_NE(weights[0].rows() * weights[0].cols(), 0u);
  weights[0](0, 0) = kNan;  // poison one parameter
  ExpectViolation([&] { agent.SetActorWeights(weights); },
                  {"SetActorWeights actor weights", "nan"});
}

TEST_F(ChkTest, DdpgConfigContractsRejectBadHyperparameters) {
  if (!chk::Enabled()) {
    GTEST_SKIP() << "library compiled with EADRL_CHECKS=OFF";
  }
  rl::DdpgConfig config;
  config.state_dim = 2;
  config.action_dim = 2;
  config.actor_hidden = {4};
  config.critic_hidden = {4};
  config.tau = 0.0;  // outside (0, 1]
  ExpectViolation([&] { rl::DdpgAgent agent(config); }, {"tau"});
}

}  // namespace
}  // namespace eadrl
