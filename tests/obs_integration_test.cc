// Integration of the eadrl::obs layer with the training/inference stack:
// a tiny EadrlCombiner run with a TelemetrySink attached must produce the
// documented event kinds with sane values, and the no-sink path must leave
// results bit-identical (instrumentation cannot perturb the math).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/eadrl.h"
#include "math/matrix.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace eadrl::core {
namespace {

void MakeData(size_t t_steps, uint64_t seed, math::Matrix* preds,
              math::Vec* actuals) {
  Rng rng(seed);
  actuals->resize(t_steps);
  *preds = math::Matrix(t_steps, 3);
  double x = 10.0;
  for (size_t t = 0; t < t_steps; ++t) {
    x = 10.0 + 0.8 * (x - 10.0) + rng.Normal(0, 1.0);
    (*actuals)[t] = x;
    (*preds)(t, 0) = x + rng.Normal(0, 0.1);
    (*preds)(t, 1) = x + rng.Normal(0, 1.5);
    (*preds)(t, 2) = x + 4.0 + rng.Normal(0, 1.0);
  }
}

EadrlConfig TinyConfig() {
  EadrlConfig cfg;
  cfg.omega = 5;
  cfg.max_episodes = 4;
  cfg.max_iterations = 25;
  cfg.actor_hidden = {16};
  cfg.critic_hidden = {16};
  cfg.batch_size = 8;
  cfg.warmup_transitions = 16;
  cfg.restarts = 1;
  cfg.early_stop = false;
  cfg.seed = 11;
  return cfg;
}

double FieldValue(const obs::TelemetryEvent& event, const std::string& key,
                  bool* found = nullptr) {
  for (const obs::TelemetryField& f : event.fields) {
    if (key == f.key) {
      if (found != nullptr) *found = true;
      return f.type == obs::TelemetryField::Type::kInt
                 ? static_cast<double>(f.inum)
                 : f.num;
    }
  }
  if (found != nullptr) *found = false;
  return 0.0;
}

TEST(ObsIntegrationTest, TrainingAndPredictEmitExpectedEvents) {
  math::Matrix preds;
  math::Vec actuals;
  MakeData(80, 5, &preds, &actuals);

  obs::CollectingSink sink;
  obs::SetTelemetrySink(&sink);

  EadrlCombiner combiner(TinyConfig());
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  for (size_t t = 0; t < 5; ++t) {
    math::Vec step{10.0, 10.5, 14.0};
    double p = combiner.Predict(step);
    EXPECT_TRUE(std::isfinite(p));
    combiner.Update(step, 10.2);
  }
  obs::SetTelemetrySink(nullptr);

  size_t episodes = 0, checkpoints = 0, predicts = 0, ddpg_updates = 0,
         train_done = 0;
  std::vector<obs::TelemetryEvent> events = sink.TakeEvents();
  for (const obs::TelemetryEvent& e : events) {
    std::string kind = e.kind;
    EXPECT_GT(e.unix_seconds, 0.0);
    if (kind == "episode") {
      ++episodes;
      bool found = false;
      double reward = FieldValue(e, "reward", &found);
      EXPECT_TRUE(found);
      EXPECT_TRUE(std::isfinite(reward));
      EXPECT_GT(FieldValue(e, "replay_size"), 0.0);
      double sigma = FieldValue(e, "ou_sigma", &found);
      EXPECT_TRUE(found);
      EXPECT_GT(sigma, 0.0);
      double eval = FieldValue(e, "eval_score", &found);
      EXPECT_TRUE(found);  // best_checkpoint defaults to true.
      EXPECT_LE(eval, 0.0);  // negative rollout RMSE.
    } else if (kind == "checkpoint") {
      ++checkpoints;
      EXPECT_TRUE(std::isfinite(FieldValue(e, "eval_score")));
    } else if (kind == "predict") {
      ++predicts;
      EXPECT_GE(FieldValue(e, "latency_seconds"), 0.0);
      double entropy = FieldValue(e, "weight_entropy");
      EXPECT_GE(entropy, 0.0);
      EXPECT_LE(entropy, std::log(3.0) + 1e-9);
      double max_w = FieldValue(e, "max_weight");
      EXPECT_GT(max_w, 0.0);
      EXPECT_LE(max_w, 1.0);
    } else if (kind == "ddpg_update") {
      ++ddpg_updates;
      EXPECT_TRUE(std::isfinite(FieldValue(e, "critic_loss")));
      EXPECT_GE(FieldValue(e, "mean_abs_q"), 0.0);
      EXPECT_GE(FieldValue(e, "actor_grad_norm"), 0.0);
    } else if (kind == "train_done") {
      ++train_done;
      EXPECT_EQ(FieldValue(e, "episodes"), 4.0);
    }
  }
  EXPECT_EQ(episodes, 4u);
  EXPECT_GE(checkpoints, 1u);  // the first eval is always a new best.
  EXPECT_EQ(predicts, 5u);
  EXPECT_GT(ddpg_updates, 0u);
  EXPECT_EQ(train_done, 1u);

  // Predict steps are strictly increasing 1..5.
  double last_step = 0.0;
  for (const obs::TelemetryEvent& e : events) {
    if (std::string(e.kind) == "predict") {
      double step = FieldValue(e, "step");
      EXPECT_DOUBLE_EQ(step, last_step + 1.0);
      last_step = step;
    }
  }
}

TEST(ObsIntegrationTest, InstrumentationDoesNotPerturbResults) {
  math::Matrix preds;
  math::Vec actuals;
  MakeData(80, 9, &preds, &actuals);
  math::Vec step{10.0, 10.5, 14.0};

  auto run = [&](bool with_sink) {
    obs::CollectingSink sink;
    if (with_sink) obs::SetTelemetrySink(&sink);
    EadrlCombiner combiner(TinyConfig());
    EXPECT_TRUE(combiner.Initialize(preds, actuals).ok());
    math::Vec out;
    for (size_t t = 0; t < 8; ++t) {
      out.push_back(combiner.Predict(step));
      combiner.Update(step, 10.2);
    }
    if (with_sink) obs::SetTelemetrySink(nullptr);
    return out;
  };

  math::Vec with = run(true);
  math::Vec without = run(false);
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_DOUBLE_EQ(with[i], without[i]);
  }
}

TEST(ObsIntegrationTest, RegistryCountsTrainingActivity) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  double episodes_before = reg.GetCounter("eadrl_episodes_total")->Value();
  double predicts_before = reg.GetCounter("eadrl_predict_total")->Value();
  uint64_t latency_before =
      reg.GetHistogram("eadrl_predict_seconds")->Count();

  math::Matrix preds;
  math::Vec actuals;
  MakeData(80, 3, &preds, &actuals);
  EadrlCombiner combiner(TinyConfig());
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  math::Vec step{10.0, 10.5, 14.0};
  combiner.Predict(step);

  EXPECT_DOUBLE_EQ(reg.GetCounter("eadrl_episodes_total")->Value(),
                   episodes_before + 4.0);
  EXPECT_DOUBLE_EQ(reg.GetCounter("eadrl_predict_total")->Value(),
                   predicts_before + 1.0);
  EXPECT_EQ(reg.GetHistogram("eadrl_predict_seconds")->Count(),
            latency_before + 1);
}

TEST(ObsIntegrationTest, LogSinkCapturesPoolWarnings) {
  // The logging satellite: tests capture log output through a sink instead
  // of scraping stderr.
  struct CaptureSink : public LogSink {
    void Write(const LogRecord& record) override {
      records.push_back(record);
    }
    std::vector<LogRecord> records;
  } capture;

  SetLogSink(&capture);
  EADRL_LOG(Warning) << "synthetic warning " << 42;
  SetLogSink(nullptr);

  ASSERT_EQ(capture.records.size(), 1u);
  EXPECT_EQ(capture.records[0].level, LogLevel::kWarning);
  EXPECT_EQ(capture.records[0].message, "synthetic warning 42");
  EXPECT_GT(capture.records[0].unix_seconds, 0.0);
  EXPECT_NE(std::string(capture.records[0].file).find("obs_integration"),
            std::string::npos);
}

}  // namespace
}  // namespace eadrl::core
