#include "common/string_util.h"

#include <gtest/gtest.h>

namespace eadrl {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat("solo"), "solo");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<std::string>{"a"}, "-"), "a");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.125, 3), "-0.125");
  EXPECT_EQ(FormatDouble(1.005, 1), "1.0");
}

TEST(PadTest, PadLeftAndRight) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  // No truncation when already wide enough.
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
  EXPECT_EQ(PadLeft("", 2), "  ");
}

}  // namespace
}  // namespace eadrl
