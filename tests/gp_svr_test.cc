#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/gp.h"
#include "models/svr.h"

namespace eadrl::models {
namespace {

TEST(GpTest, InterpolatesTrainingPointsWithLowNoise) {
  math::Matrix x{{0.0}, {1.0}, {2.0}, {3.0}};
  math::Vec y{0.0, 1.0, 0.0, -1.0};
  GaussianProcessRegressor::Params p;
  p.noise_variance = 1e-6;
  p.length_scale = 0.5;
  GaussianProcessRegressor gp(p);
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(gp.Predict(x.Row(i)), y[i], 1e-3);
  }
}

TEST(GpTest, RevertsToMeanFarFromData) {
  math::Matrix x{{0.0}, {1.0}};
  math::Vec y{10.0, 12.0};
  GaussianProcessRegressor::Params p;
  p.length_scale = 0.5;
  GaussianProcessRegressor gp(p);
  ASSERT_TRUE(gp.Fit(x, y).ok());
  EXPECT_NEAR(gp.Predict({100.0}), 11.0, 0.1);  // prior mean = data mean.
}

TEST(GpTest, VarianceGrowsAwayFromData) {
  math::Matrix x{{0.0}, {1.0}};
  math::Vec y{0.0, 1.0};
  GaussianProcessRegressor::Params p;
  GaussianProcessRegressor gp(p);
  ASSERT_TRUE(gp.Fit(x, y).ok());
  double mean_near, var_near, mean_far, var_far;
  gp.PredictWithVariance({0.5}, &mean_near, &var_near);
  gp.PredictWithVariance({50.0}, &mean_far, &var_far);
  EXPECT_LT(var_near, var_far);
  EXPECT_NEAR(var_far, 1.0, 0.1);  // reverts to signal variance.
}

TEST(GpTest, SubsamplesLargeTrainingSets) {
  Rng rng(1);
  const size_t n = 600;
  math::Matrix x(n, 1);
  math::Vec y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(-3, 3);
    y[i] = std::sin(x(i, 0));
  }
  GaussianProcessRegressor::Params p;
  p.max_points = 150;
  p.length_scale = 1.0;
  p.noise_variance = 0.01;
  GaussianProcessRegressor gp(p);
  ASSERT_TRUE(gp.Fit(x, y).ok());
  EXPECT_NEAR(gp.Predict({0.5}), std::sin(0.5), 0.15);
}

TEST(SvrTest, FitsLinearFunction) {
  Rng rng(2);
  math::Matrix x(200, 2);
  math::Vec y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);
    y[i] = 1.5 * x(i, 0) - 0.5 * x(i, 1) + 0.2;
  }
  SvrRegressor::Params p;
  p.epochs = 80;
  SvrRegressor svr(p);
  ASSERT_TRUE(svr.Fit(x, y).ok());
  double mse = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    double d = svr.Predict(x.Row(i)) - y[i];
    mse += d * d;
  }
  EXPECT_LT(mse / 200.0, 0.02);
}

TEST(SvrTest, RbfFeaturesFitNonlinearFunction) {
  Rng rng(3);
  math::Matrix x(300, 1);
  math::Vec y(300);
  for (size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.Uniform(-2, 2);
    y[i] = std::sin(2.0 * x(i, 0));
  }
  SvrRegressor::Params lin;
  lin.epochs = 60;
  SvrRegressor linear(lin);
  ASSERT_TRUE(linear.Fit(x, y).ok());

  SvrRegressor::Params rbf = lin;
  rbf.rff_features = 100;
  rbf.rff_length_scale = 0.7;
  SvrRegressor kernelized(rbf);
  ASSERT_TRUE(kernelized.Fit(x, y).ok());

  auto mse = [&](const SvrRegressor& m) {
    double s = 0.0;
    for (size_t i = 0; i < 300; ++i) {
      double d = m.Predict(x.Row(i)) - y[i];
      s += d * d;
    }
    return s / 300.0;
  };
  EXPECT_LT(mse(kernelized), mse(linear) * 0.5);
}

TEST(SvrTest, DeterministicForSeed) {
  Rng rng(4);
  math::Matrix x(50, 1);
  math::Vec y(50);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    y[i] = x(i, 0);
  }
  SvrRegressor::Params p;
  p.rff_features = 20;
  SvrRegressor a(p), b(p);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.3}), b.Predict({0.3}));
}

}  // namespace
}  // namespace eadrl::models
