// Tests for the paper's future-work extensions: policy persistence,
// pruning, diversity-aware reward and online policy updates.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/eadrl.h"
#include "rl/env.h"

namespace eadrl::core {
namespace {

void MakeSkillGapData(size_t t_steps, uint64_t seed, math::Matrix* preds,
                      math::Vec* actuals) {
  Rng rng(seed);
  actuals->resize(t_steps);
  *preds = math::Matrix(t_steps, 4);
  double x = 10.0;
  for (size_t t = 0; t < t_steps; ++t) {
    x = 10.0 + 0.8 * (x - 10.0) + rng.Normal(0, 1.0);
    (*actuals)[t] = x;
    (*preds)(t, 0) = x + rng.Normal(0, 0.1);
    (*preds)(t, 1) = x + rng.Normal(0, 0.5);
    (*preds)(t, 2) = x + rng.Normal(0, 1.5);
    (*preds)(t, 3) = x + 5.0 + rng.Normal(0, 1.0);  // clearly worst.
  }
}

EadrlConfig FastConfig() {
  EadrlConfig cfg;
  cfg.omega = 5;
  cfg.max_episodes = 15;
  cfg.max_iterations = 50;
  cfg.actor_hidden = {16};
  cfg.critic_hidden = {16};
  cfg.batch_size = 8;
  cfg.warmup_transitions = 16;
  cfg.early_stop = false;
  cfg.restarts = 1;
  cfg.seed = 3;
  return cfg;
}

TEST(PolicyPersistenceTest, SaveLoadReproducesOnlineBehaviour) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 1, &preds, &actuals);

  EadrlCombiner original(FastConfig());
  ASSERT_TRUE(original.Initialize(preds, actuals).ok());

  std::string path = testing::TempDir() + "/policy.txt";
  ASSERT_TRUE(original.SavePolicy(path).ok());

  EadrlCombiner restored(FastConfig());
  ASSERT_TRUE(restored.LoadPolicy(path).ok());

  // Identical online predictions over a short horizon.
  for (int t = 0; t < 10; ++t) {
    math::Vec step{10.0, 10.5, 11.0, 15.0};
    EXPECT_DOUBLE_EQ(original.Predict(step), restored.Predict(step));
  }
}

TEST(PolicyPersistenceTest, SaveBeforeInitializeFails) {
  EadrlCombiner combiner(FastConfig());
  EXPECT_FALSE(combiner.SavePolicy(testing::TempDir() + "/x.txt").ok());
}

TEST(PolicyPersistenceTest, LoadRejectsMissingFileAndOmegaMismatch) {
  EadrlCombiner combiner(FastConfig());
  EXPECT_FALSE(combiner.LoadPolicy(testing::TempDir() + "/none.txt").ok());

  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 2, &preds, &actuals);
  EadrlCombiner trained(FastConfig());
  ASSERT_TRUE(trained.Initialize(preds, actuals).ok());
  std::string path = testing::TempDir() + "/policy2.txt";
  ASSERT_TRUE(trained.SavePolicy(path).ok());

  EadrlConfig other = FastConfig();
  other.omega = 7;
  EadrlCombiner mismatched(other);
  EXPECT_FALSE(mismatched.LoadPolicy(path).ok());
}

TEST(PruningTest, RestrictsWeightsToTopModels) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(150, 3, &preds, &actuals);

  EadrlConfig cfg = FastConfig();
  cfg.prune_top_n = 2;
  EadrlCombiner combiner(cfg);
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());

  // Models 0 and 1 have the lowest validation error.
  EXPECT_EQ(combiner.active_models(), (std::vector<size_t>{0, 1}));

  math::Vec w = combiner.Weights();
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
  EXPECT_DOUBLE_EQ(w[3], 0.0);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-9);
}

TEST(PruningTest, PredictStillTakesFullPredictionVector) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(150, 4, &preds, &actuals);
  EadrlConfig cfg = FastConfig();
  cfg.prune_top_n = 2;
  EadrlCombiner combiner(cfg);
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  double p = combiner.Predict({10.0, 11.0, 99.0, -99.0});
  // Pruned models (2, 3) cannot influence the combination.
  EXPECT_GE(p, 10.0 - 1e-9);
  EXPECT_LE(p, 11.0 + 1e-9);
}

TEST(DiversityRewardTest, BonusRaisesRewardOfMixedActions) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(60, 5, &preds, &actuals);
  rl::EnsembleEnv plain(preds, actuals, 5, rl::RewardType::kRank, 0.0);
  rl::EnsembleEnv diverse(preds, actuals, 5, rl::RewardType::kRank, 1.0);
  plain.Reset();
  diverse.Reset();
  math::Vec mixed(4, 0.25);
  // Same base rank; the diversity term adds a non-negative bonus.
  EXPECT_GT(diverse.RewardAt(10, mixed), plain.RewardAt(10, mixed));

  // A one-hot action has zero dispersion: rewards match.
  math::Vec onehot{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(diverse.RewardAt(10, onehot), plain.RewardAt(10, onehot));
}

TEST(OnlineUpdateTest, FrozenByDefault) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 6, &preds, &actuals);
  EadrlCombiner combiner(FastConfig());
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  for (int t = 0; t < 60; ++t) {
    math::Vec step{10.0, 10.2, 10.4, 15.0};
    combiner.Predict(step);
    combiner.Update(step, 10.1);
  }
  EXPECT_EQ(combiner.online_updates(), 0u);
}

TEST(OnlineUpdateTest, PeriodicModePerformsUpdates) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 7, &preds, &actuals);
  EadrlConfig cfg = FastConfig();
  cfg.online_update = OnlineUpdateMode::kPeriodic;
  cfg.online_update_every = 10;
  cfg.online_update_iterations = 2;
  EadrlCombiner combiner(cfg);
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());

  Rng rng(8);
  for (int t = 0; t < 80; ++t) {
    double x = 10.0 + rng.Normal(0, 1.0);
    math::Vec step{x + rng.Normal(0, 0.1), x + rng.Normal(0, 0.5),
                   x + rng.Normal(0, 1.5), x + 5.0};
    combiner.Predict(step);
    combiner.Update(step, x);
  }
  EXPECT_GT(combiner.online_updates(), 0u);
  // Online updates keep weights on the simplex.
  math::Vec w = combiner.Weights();
  double sum = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OnlineUpdateTest, DriftInformedModeTriggersOnRegimeChange) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 9, &preds, &actuals);
  EadrlConfig cfg = FastConfig();
  cfg.online_update = OnlineUpdateMode::kDriftInformed;
  cfg.online_update_iterations = 3;
  EadrlCombiner combiner(cfg);
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());

  Rng rng(10);
  // Calm regime first, then every model goes badly wrong (drift).
  for (int t = 0; t < 40; ++t) {
    double x = 10.0 + rng.Normal(0, 0.5);
    math::Vec step{x, x + 0.1, x - 0.1, x + 5.0};
    combiner.Predict(step);
    combiner.Update(step, x);
  }
  size_t before = combiner.online_updates();
  for (int t = 0; t < 40; ++t) {
    math::Vec step{50.0, 51.0, 52.0, 55.0};
    combiner.Predict(step);
    combiner.Update(step, 10.0 + rng.Normal(0, 0.5));
  }
  EXPECT_GT(combiner.online_updates(), before);
}

}  // namespace
}  // namespace eadrl::core
