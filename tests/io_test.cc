#include "ts/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace eadrl::ts {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, LoadsSingleColumn) {
  std::string path = TempPath("simple.csv");
  WriteFile(path, "1.5\n2.5\n3.5\n");
  auto s = LoadCsv(path, CsvOptions{});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->values(), (math::Vec{1.5, 2.5, 3.5}));
  EXPECT_EQ(s->name(), "simple.csv");
}

TEST_F(IoTest, SkipsHeaderAndSelectsColumn) {
  std::string path = TempPath("multi.csv");
  WriteFile(path, "time,value,flag\n2020-01-01,10,a\n2020-01-02,20,b\n");
  CsvOptions opt;
  opt.skip_rows = 1;
  opt.value_column = 1;
  opt.name = "demand";
  opt.seasonal_period = 24;
  auto s = LoadCsv(path, opt);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->values(), (math::Vec{10, 20}));
  EXPECT_EQ(s->name(), "demand");
  EXPECT_EQ(s->seasonal_period(), 24u);
}

TEST_F(IoTest, HandlesWindowsLineEndingsAndBlankLines) {
  std::string path = TempPath("crlf.csv");
  WriteFile(path, "1\r\n\r\n2\r\n");
  auto s = LoadCsv(path, CsvOptions{});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->values(), (math::Vec{1, 2}));
}

TEST_F(IoTest, ErrorsOnMissingColumn) {
  std::string path = TempPath("short.csv");
  WriteFile(path, "1,2\n3\n");
  CsvOptions opt;
  opt.value_column = 1;
  auto s = LoadCsv(path, opt);
  EXPECT_FALSE(s.ok());
}

TEST_F(IoTest, ErrorsOnUnparsableValue) {
  std::string path = TempPath("bad.csv");
  WriteFile(path, "1\nnot-a-number\n");
  auto s = LoadCsv(path, CsvOptions{});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("line 2"), std::string::npos);
}

TEST_F(IoTest, ErrorsOnMissingFile) {
  EXPECT_FALSE(LoadCsv(TempPath("does-not-exist.csv"), CsvOptions{}).ok());
}

TEST_F(IoTest, ErrorsOnEmptyFile) {
  std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  EXPECT_FALSE(LoadCsv(path, CsvOptions{}).ok());
}

TEST_F(IoTest, SaveLoadRoundTrip) {
  std::string path = TempPath("roundtrip.csv");
  Series original("series-x", {1.25, -3.5, 0.0, 42.0});
  ASSERT_TRUE(SaveCsv(original, path).ok());
  CsvOptions opt;
  opt.skip_rows = 1;  // SaveCsv writes the name as a header.
  auto loaded = LoadCsv(path, opt);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->values(), original.values());
}

}  // namespace
}  // namespace eadrl::ts
