#include "rl/replay_buffer.h"

#include <gtest/gtest.h>

namespace eadrl::rl {
namespace {

Transition MakeTransition(double reward) {
  Transition t;
  t.state = {0.0};
  t.action = {1.0};
  t.reward = reward;
  t.next_state = {0.0};
  return t;
}

TEST(ReplayBufferTest, GrowsUntilCapacityThenOverwrites) {
  ReplayBuffer buf(3);
  EXPECT_TRUE(buf.empty());
  for (int i = 0; i < 5; ++i) buf.Add(MakeTransition(i));
  EXPECT_EQ(buf.size(), 3u);
  // Oldest entries (0, 1) were overwritten by (3, 4).
  std::vector<double> rewards;
  for (size_t i = 0; i < buf.size(); ++i) rewards.push_back(buf.at(i).reward);
  std::sort(rewards.begin(), rewards.end());
  EXPECT_EQ(rewards, (std::vector<double>{2, 3, 4}));
}

TEST(ReplayBufferTest, RewardMedian) {
  ReplayBuffer buf(10);
  for (double r : {1.0, 2.0, 3.0, 4.0, 5.0}) buf.Add(MakeTransition(r));
  EXPECT_DOUBLE_EQ(buf.RewardMedian(), 3.0);
}

TEST(ReplayBufferTest, UniformSampleHasRequestedSize) {
  ReplayBuffer buf(10);
  for (int i = 0; i < 5; ++i) buf.Add(MakeTransition(i));
  Rng rng(1);
  auto batch = buf.Sample(8, SamplingStrategy::kUniform, rng);
  EXPECT_EQ(batch.size(), 8u);
}

// Eq. 4 of the paper: half the batch >= median reward, half below.
class MedianSplitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MedianSplitProperty, BatchIsBalanced) {
  ReplayBuffer buf(100);
  Rng data_rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    buf.Add(MakeTransition(data_rng.Uniform(0.0, 10.0)));
  }
  double median = buf.RewardMedian();

  Rng rng(GetParam() + 1000);
  auto batch = buf.Sample(16, SamplingStrategy::kMedianSplit, rng);
  ASSERT_EQ(batch.size(), 16u);
  size_t high = 0, low = 0;
  for (const Transition& t : batch) {
    if (t.reward >= median) {
      ++high;
    } else {
      ++low;
    }
  }
  EXPECT_EQ(high, 8u);
  EXPECT_EQ(low, 8u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MedianSplitProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ReplayBufferTest, MedianSplitOddBatchGivesExtraToLow) {
  ReplayBuffer buf(10);
  for (double r : {1.0, 1.0, 9.0, 9.0}) buf.Add(MakeTransition(r));
  Rng rng(3);
  auto batch = buf.Sample(5, SamplingStrategy::kMedianSplit, rng);
  size_t high = 0;
  for (const Transition& t : batch) {
    if (t.reward >= buf.RewardMedian()) ++high;
  }
  EXPECT_EQ(high, 2u);
}

TEST(ReplayBufferTest, MedianSplitFallsBackWhenAllRewardsEqual) {
  ReplayBuffer buf(10);
  for (int i = 0; i < 6; ++i) buf.Add(MakeTransition(5.0));
  Rng rng(4);
  auto batch = buf.Sample(4, SamplingStrategy::kMedianSplit, rng);
  EXPECT_EQ(batch.size(), 4u);
}

TEST(ReplayBufferTest, MedianSplitSingleElementFallsBack) {
  ReplayBuffer buf(10);
  buf.Add(MakeTransition(1.0));
  Rng rng(5);
  auto batch = buf.Sample(3, SamplingStrategy::kMedianSplit, rng);
  EXPECT_EQ(batch.size(), 3u);
}

}  // namespace
}  // namespace eadrl::rl
