#include "stats/bayes_tests.h"

#include <gtest/gtest.h>

namespace eadrl::stats {
namespace {

TEST(CorrelatedTTestTest, ClearWinForA) {
  // Consistently negative differences: method A (losses) much lower.
  math::Vec diffs;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) diffs.push_back(-2.0 + rng.Normal(0, 0.1));
  auto result = BayesianCorrelatedTTest(diffs, 0.1, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_a_better, 0.99);
  EXPECT_LT(result->p_b_better, 0.01);
}

TEST(CorrelatedTTestTest, ClearWinForB) {
  math::Vec diffs;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) diffs.push_back(1.5 + rng.Normal(0, 0.1));
  auto result = BayesianCorrelatedTTest(diffs, 0.1, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_b_better, 0.99);
}

TEST(CorrelatedTTestTest, SymmetricCaseSplits) {
  math::Vec diffs;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) diffs.push_back(rng.Normal(0, 1.0));
  auto result = BayesianCorrelatedTTest(diffs, 0.0, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->p_a_better, 0.5, 0.2);
  EXPECT_NEAR(result->p_a_better + result->p_b_better, 1.0, 1e-9);
}

TEST(CorrelatedTTestTest, CorrelationWidensPosterior) {
  math::Vec diffs;
  Rng rng(4);
  for (int i = 0; i < 30; ++i) diffs.push_back(-0.3 + rng.Normal(0, 0.5));
  auto indep = BayesianCorrelatedTTest(diffs, 0.0, 0.0);
  auto corr = BayesianCorrelatedTTest(diffs, 0.5, 0.0);
  ASSERT_TRUE(indep.ok() && corr.ok());
  // With correlation, the same evidence is weaker.
  EXPECT_LT(corr->p_a_better, indep->p_a_better);
}

TEST(CorrelatedTTestTest, RopeAbsorbsTinyDifferences) {
  math::Vec diffs(40, -0.01);  // tiny but consistent.
  auto result = BayesianCorrelatedTTest(diffs, 0.0, 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_rope, 0.9);
}

TEST(CorrelatedTTestTest, DegenerateConstantDiffs) {
  math::Vec diffs(10, -3.0);
  auto result = BayesianCorrelatedTTest(diffs, 0.0, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->p_a_better, 1.0);
}

TEST(CorrelatedTTestTest, RejectsBadInputs) {
  EXPECT_FALSE(BayesianCorrelatedTTest({1.0}, 0.0, 0.0).ok());
  EXPECT_FALSE(BayesianCorrelatedTTest({1.0, 2.0}, 1.0, 0.0).ok());
  EXPECT_FALSE(BayesianCorrelatedTTest({1.0, 2.0}, 0.0, -1.0).ok());
}

TEST(BayesSignTest, StrongMajorityWins) {
  math::Vec diffs;
  for (int i = 0; i < 18; ++i) diffs.push_back(-1.0);
  for (int i = 0; i < 2; ++i) diffs.push_back(1.0);
  Rng rng(5);
  auto result = BayesSignTest(diffs, 0.0, 20000, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_a_better, 0.95);
}

TEST(BayesSignTest, BalancedCountsUncertain) {
  math::Vec diffs;
  for (int i = 0; i < 10; ++i) diffs.push_back(-1.0);
  for (int i = 0; i < 10; ++i) diffs.push_back(1.0);
  Rng rng(6);
  auto result = BayesSignTest(diffs, 0.0, 20000, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->p_a_better, 0.8);
  EXPECT_LT(result->p_b_better, 0.8);
}

TEST(BayesSignTest, RopeCountsDominate) {
  math::Vec diffs(20, 0.001);
  Rng rng(7);
  auto result = BayesSignTest(diffs, 0.01, 20000, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_rope, 0.9);
}

TEST(BayesSignTest, ProbabilitiesSumToOne) {
  math::Vec diffs{-1, 1, -1, 0.0, 2, -2};
  Rng rng(8);
  auto result = BayesSignTest(diffs, 0.5, 5000, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->p_a_better + result->p_rope + result->p_b_better, 1.0,
              1e-9);
}

TEST(BayesSignTest, RejectsEmpty) {
  Rng rng(9);
  EXPECT_FALSE(BayesSignTest({}, 0.0, 100, rng).ok());
}

}  // namespace
}  // namespace eadrl::stats
