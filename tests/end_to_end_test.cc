// End-to-end integration: dataset -> CSV round trip -> pool fitting ->
// offline policy training -> policy persistence -> online forecasting.
// Exercises the full workflow a downstream user would run.

#include <cmath>

#include <gtest/gtest.h>

#include "core/eadrl.h"
#include "exp/experiment.h"
#include "ts/datasets.h"
#include "ts/io.h"
#include "ts/metrics.h"

namespace eadrl {
namespace {

TEST(EndToEndTest, CsvToPolicyToForecast) {
  // 1. Generate and persist a dataset, then reload it (data-ingestion path).
  auto generated = ts::MakeDataset(14, 42, 260);
  ASSERT_TRUE(generated.ok());
  std::string csv_path = testing::TempDir() + "/e2e.csv";
  ASSERT_TRUE(ts::SaveCsv(*generated, csv_path).ok());

  ts::CsvOptions csv;
  csv.skip_rows = 1;
  csv.name = "humidity";
  csv.seasonal_period = 144;
  auto series = ts::LoadCsv(csv_path, csv);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), generated->size());

  // 2. Fit the pool and train the policy offline.
  exp::ExperimentOptions opt;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 2;
  opt.eadrl.omega = 5;
  opt.eadrl.max_episodes = 8;
  opt.eadrl.max_iterations = 40;
  opt.eadrl.actor_hidden = {16};
  opt.eadrl.critic_hidden = {16};
  opt.eadrl.batch_size = 8;
  opt.eadrl.warmup_transitions = 16;
  opt.eadrl.restarts = 1;
  exp::PoolRun pool = exp::PreparePool(*series, opt);

  core::EadrlCombiner trainer(opt.eadrl);
  ASSERT_TRUE(trainer.Initialize(pool.val_preds, pool.val_actuals).ok());

  // 3. Persist the policy and deploy it in a fresh combiner.
  std::string policy_path = testing::TempDir() + "/e2e-policy.txt";
  ASSERT_TRUE(trainer.SavePolicy(policy_path).ok());
  core::EadrlCombiner deployed(opt.eadrl);
  ASSERT_TRUE(deployed.LoadPolicy(policy_path).ok());

  // 4. Online forecasting over the test segment.
  math::Vec forecasts(pool.test_actuals.size());
  for (size_t t = 0; t < pool.test_actuals.size(); ++t) {
    math::Vec preds = pool.test_preds.Row(t);
    forecasts[t] = deployed.Predict(preds);
    deployed.Update(preds, pool.test_actuals[t]);
    EXPECT_TRUE(std::isfinite(forecasts[t]));
  }
  double rmse = ts::Rmse(pool.test_actuals, forecasts);
  EXPECT_TRUE(std::isfinite(rmse));

  // The deployed ensemble must not be worse than the worst base model.
  double worst = 0.0;
  for (size_t m = 0; m < pool.model_names.size(); ++m) {
    worst = std::max(worst, ts::Rmse(pool.test_actuals,
                                     pool.test_preds.Col(m)));
  }
  EXPECT_LE(rmse, worst);
}

}  // namespace
}  // namespace eadrl
