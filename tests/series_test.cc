#include "ts/series.h"

#include <gtest/gtest.h>

namespace eadrl::ts {
namespace {

TEST(SeriesTest, BasicAccess) {
  Series s("test", {1, 2, 3}, "daily", 7);
  EXPECT_EQ(s.name(), "test");
  EXPECT_EQ(s.frequency(), "daily");
  EXPECT_EQ(s.seasonal_period(), 7u);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(SeriesTest, SliceKeepsMetadata) {
  Series s("test", {1, 2, 3, 4, 5}, "hourly", 24);
  Series sub = s.Slice(1, 4);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0], 2.0);
  EXPECT_DOUBLE_EQ(sub[2], 4.0);
  EXPECT_EQ(sub.frequency(), "hourly");
  EXPECT_EQ(sub.seasonal_period(), 24u);
}

TEST(SeriesTest, SliceEmptyRange) {
  Series s("test", {1, 2, 3});
  EXPECT_EQ(s.Slice(1, 1).size(), 0u);
}

TEST(SeriesTest, DiffComputesFirstDifferences) {
  Series s("test", {1, 4, 9, 16});
  Series d = s.Diff();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_DOUBLE_EQ(d[2], 7.0);
}

TEST(SeriesTest, PushBack) {
  Series s("test", {1.0});
  s.PushBack(2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(SplitTest, SeventyFiveTwentyFive) {
  math::Vec v(100);
  for (size_t i = 0; i < 100; ++i) v[i] = static_cast<double>(i);
  Series s("test", v);
  TrainTestSplit split = SplitTrainTest(s, 0.75);
  EXPECT_EQ(split.train.size(), 75u);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_DOUBLE_EQ(split.train[74], 74.0);
  EXPECT_DOUBLE_EQ(split.test[0], 75.0);
}

TEST(SplitTest, ChronologicalOrderPreserved) {
  Series s("test", {5, 4, 3, 2, 1});
  TrainTestSplit split = SplitTrainTest(s, 0.6);
  EXPECT_DOUBLE_EQ(split.train[0], 5.0);
  EXPECT_DOUBLE_EQ(split.test[split.test.size() - 1], 1.0);
}

}  // namespace
}  // namespace eadrl::ts
