#include "math/vec.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eadrl::math {
namespace {

TEST(VecTest, DotAndNorm) {
  Vec a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
}

TEST(VecTest, ElementwiseOps) {
  Vec a{1, 2}, b{3, 5};
  EXPECT_EQ(Add(a, b), (Vec{4, 7}));
  EXPECT_EQ(Sub(b, a), (Vec{2, 3}));
  EXPECT_EQ(Scale(a, 2.0), (Vec{2, 4}));
  EXPECT_EQ(Hadamard(a, b), (Vec{3, 10}));
}

TEST(VecTest, Axpy) {
  Vec y{1, 1, 1};
  Axpy(2.0, {1, 2, 3}, &y);
  EXPECT_EQ(y, (Vec{3, 5, 7}));
}

TEST(VecTest, SoftmaxSumsToOne) {
  Vec p = Softmax({1.0, 2.0, 3.0});
  double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(VecTest, SoftmaxNumericallyStableForLargeInputs) {
  Vec p = Softmax({1000.0, 1000.0, 999.0});
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0], p[1], 1e-12);
}

TEST(VecTest, NormalizeToSimplexClipsNegatives) {
  Vec w = NormalizeToSimplex({-1.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_NEAR(w[1] + w[2], 1.0, 1e-12);
  EXPECT_NEAR(w[2], 0.75, 1e-12);
}

TEST(VecTest, NormalizeToSimplexUniformFallback) {
  Vec w = NormalizeToSimplex({-1.0, -2.0, 0.0});
  for (double v : w) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(VecTest, ProjectToSimplexAlreadyOnSimplex) {
  Vec w = ProjectToSimplex({0.2, 0.3, 0.5});
  EXPECT_NEAR(w[0], 0.2, 1e-9);
  EXPECT_NEAR(w[1], 0.3, 1e-9);
  EXPECT_NEAR(w[2], 0.5, 1e-9);
}

TEST(VecTest, ProjectToSimplexKnownCase) {
  // Projecting (1,1) onto the simplex gives (0.5, 0.5).
  Vec w = ProjectToSimplex({1.0, 1.0});
  EXPECT_NEAR(w[0], 0.5, 1e-9);
  EXPECT_NEAR(w[1], 0.5, 1e-9);
}

// Property: the projection output is always a valid probability vector and is
// the closest such point (verified against a dense grid for 2-D cases).
class ProjectSimplexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProjectSimplexProperty, OutputOnSimplexAndCloserThanGrid) {
  Rng rng(GetParam());
  Vec a(3);
  for (double& v : a) v = rng.Uniform(-3.0, 3.0);
  Vec w = ProjectToSimplex(a);

  double sum = 0.0;
  for (double v : w) {
    EXPECT_GE(v, -1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);

  // Any random point on the simplex must be at least as far from `a`.
  double dist_w = Norm2(Sub(w, a));
  for (int trial = 0; trial < 50; ++trial) {
    Vec q(3);
    for (double& v : q) v = rng.Uniform(0.0, 1.0);
    double qs = q[0] + q[1] + q[2];
    for (double& v : q) v /= qs;
    EXPECT_LE(dist_w, Norm2(Sub(q, a)) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectSimplexProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace eadrl::math
