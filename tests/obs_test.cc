#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <stdexcept>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace eadrl::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal flat-JSON-object parser used to golden-check the JSON-lines shape:
// accepts {"key":value,...} with string / number / null values and returns
// the raw value text per key. Any syntax violation fails the parse.
// ---------------------------------------------------------------------------

bool ParseFlatJsonObject(const std::string& line,
                         std::map<std::string, std::string>* out) {
  out->clear();
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(
                                  line[i]))) {
      ++i;
    }
  };
  auto parse_string = [&](std::string* s) {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s->clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        if (i >= line.size()) return false;
        switch (line[i]) {
          case '"': *s += '"'; break;
          case '\\': *s += '\\'; break;
          case 'n': *s += '\n'; break;
          case 'r': *s += '\r'; break;
          case 't': *s += '\t'; break;
          case 'u':
            if (i + 4 >= line.size()) return false;
            i += 4;  // keep the escape opaque; shape check only.
            *s += '?';
            break;
          default: return false;
        }
      } else {
        *s += line[i];
      }
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote.
    return true;
  };
  auto parse_number_or_null = [&](std::string* v) {
    size_t start = i;
    if (line.compare(i, 4, "null") == 0) {
      i += 4;
      *v = "null";
      return true;
    }
    while (i < line.size() &&
           (std::isdigit(static_cast<unsigned char>(line[i])) ||
            line[i] == '-' || line[i] == '+' || line[i] == '.' ||
            line[i] == 'e' || line[i] == 'E')) {
      ++i;
    }
    if (i == start) return false;
    *v = line.substr(start, i - start);
    // The numeric text must round-trip through strtod completely.
    char* end = nullptr;
    std::strtod(v->c_str(), &end);
    return end == v->c_str() + v->size();
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return true;
  while (true) {
    skip_ws();
    std::string key, value;
    if (!parse_string(&key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(&value)) return false;
    } else if (!parse_number_or_null(&value)) {
      return false;
    }
    (*out)[key] = value;
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  if (i >= line.size() || line[i] != '}') return false;
  ++i;
  skip_ws();
  return i == line.size();
}

// ---------------------------------------------------------------------------
// Counter / Gauge.
// ---------------------------------------------------------------------------

TEST(ObsCounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
  c.Inc();
  c.Inc(2.5);
  EXPECT_DOUBLE_EQ(c.Value(), 3.5);
}

TEST(ObsCounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kIncs = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c.Value(), static_cast<double>(kThreads * kIncs));
}

TEST(ObsGaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10.0);
  EXPECT_DOUBLE_EQ(g.Value(), 10.0);
  g.Add(-2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 7.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

TEST(ObsHistogramTest, BucketAssignment) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);    // bucket 0: (-inf, 1]
  h.Observe(1.0);    // bucket 0: upper bounds are inclusive ("le").
  h.Observe(1.5);    // bucket 1: (1, 2]
  h.Observe(3.0);    // bucket 2: (2, 4]
  h.Observe(100.0);  // overflow bucket.
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 3.0 + 100.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(h.Mean(), snap.sum / 5.0);
}

TEST(ObsHistogramTest, QuantileInterpolationIsSane) {
  Histogram h(Histogram::LinearBounds(0.1, 0.1, 10));  // 0.1 .. 1.0
  for (int i = 1; i <= 1000; ++i) {
    h.Observe(static_cast<double>(i) / 1000.0);  // uniform on (0, 1].
  }
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.06);
  EXPECT_NEAR(h.Quantile(0.9), 0.9, 0.06);
  EXPECT_GE(h.Quantile(1.0), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.0), h.Quantile(0.5));
}

TEST(ObsHistogramTest, QuantileClampsToObservedRange) {
  Histogram h({1.0, 2.0});
  h.Observe(1000.0);  // only the open-ended overflow bucket is hit.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 1000.0);
  EXPECT_TRUE(std::isfinite(h.Quantile(1.0)));
}

TEST(ObsHistogramTest, EmptyHistogram) {
  Histogram h({1.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(ObsHistogramTest, ConcurrentObservationsAreLossless) {
  Histogram h(Histogram::ExponentialBounds(1e-3, 2.0, 10));
  constexpr int kThreads = 4;
  constexpr int kObs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) {
        h.Observe(1e-3 * static_cast<double>(1 + ((i + t) % 512)));
      }
    });
  }
  for (auto& t : threads) t.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kObs));
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsHistogramTest, BoundHelpers) {
  std::vector<double> exp = Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  std::vector<double> lin = Histogram::LinearBounds(0.0, 0.5, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[2], 1.0);
}

// ---------------------------------------------------------------------------
// StreamingQuantile (P-squared).
// ---------------------------------------------------------------------------

TEST(ObsStreamingQuantileTest, SmallSampleIsExact) {
  StreamingQuantile q(0.5);
  q.Observe(3.0);
  EXPECT_DOUBLE_EQ(q.Value(), 3.0);
  q.Observe(1.0);
  q.Observe(2.0);
  EXPECT_DOUBLE_EQ(q.Value(), 2.0);  // median of {1,2,3}.
}

TEST(ObsStreamingQuantileTest, ConvergesOnUniformStream) {
  Rng rng(7);
  StreamingQuantile median(0.5);
  StreamingQuantile p90(0.9);
  for (int i = 0; i < 20000; ++i) {
    double v = rng.Uniform();
    median.Observe(v);
    p90.Observe(v);
  }
  EXPECT_NEAR(median.Value(), 0.5, 0.03);
  EXPECT_NEAR(p90.Value(), 0.9, 0.03);
  EXPECT_EQ(median.count(), 20000u);
}

// ---------------------------------------------------------------------------
// MetricRegistry.
// ---------------------------------------------------------------------------

TEST(ObsRegistryTest, SameNameAndLabelsReturnsSamePointer) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("requests", {{"method", "predict"}});
  Counter* b = reg.GetCounter("requests", {{"method", "predict"}});
  EXPECT_EQ(a, b);
}

TEST(ObsRegistryTest, LabelOrderIsInsensitive) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("c", {{"x", "1"}, {"y", "2"}});
  Counter* b = reg.GetCounter("c", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
}

TEST(ObsRegistryTest, DifferentLabelsAreDistinctMetrics) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("c", {{"m", "a"}});
  Counter* b = reg.GetCounter("c", {{"m", "b"}});
  Counter* unlabeled = reg.GetCounter("c2");
  EXPECT_NE(a, b);
  EXPECT_NE(a, unlabeled);
  a->Inc();
  EXPECT_DOUBLE_EQ(a->Value(), 1.0);
  EXPECT_DOUBLE_EQ(b->Value(), 0.0);
}

TEST(ObsRegistryTest, JsonAndCsvSnapshots) {
  MetricRegistry reg;
  reg.GetCounter("hits", {{"path", "/predict"}})->Inc(3);
  reg.GetGauge("temp")->Set(21.5);
  reg.GetHistogram("lat", {0.1, 1.0})->Observe(0.05);

  std::string json = reg.ToJson();
  std::map<std::string, std::string> ignored;
  // The registry JSON is nested, so only spot-check its contents here; the
  // flat-object parser is exercised on telemetry lines below.
  EXPECT_NE(json.find("\"hits\""), std::string::npos);
  EXPECT_NE(json.find("path=/predict"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  std::string csv = reg.ToCsv();
  EXPECT_NE(csv.find("name,labels,field,value"), std::string::npos);
  EXPECT_NE(csv.find("hits"), std::string::npos);
  EXPECT_NE(csv.find("p99"), std::string::npos);
}

TEST(ObsRegistryTest, ResetDropsMetrics) {
  MetricRegistry reg;
  reg.GetCounter("x")->Inc();
  reg.Reset();
  EXPECT_DOUBLE_EQ(reg.GetCounter("x")->Value(), 0.0);
}

// ---------------------------------------------------------------------------
// ScopedTimer.
// ---------------------------------------------------------------------------

TEST(ObsScopedTimerTest, WritesOutAndObserves) {
  Histogram h(Histogram::DefaultLatencyBounds());
  double seconds = -1.0;
  {
    ScopedTimer timer(&h, &seconds);
  }
  EXPECT_GE(seconds, 0.0);
  EXPECT_EQ(h.Count(), 1u);
}

TEST(ObsScopedTimerTest, StopIsIdempotent) {
  Histogram h(Histogram::DefaultLatencyBounds());
  ScopedTimer timer(&h);
  double first = timer.Stop();
  double second = timer.Stop();
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(h.Count(), 1u);  // destructor must not double-record.
}

// ---------------------------------------------------------------------------
// Telemetry.
// ---------------------------------------------------------------------------

TEST(ObsTelemetryTest, DisabledByDefault) {
  EXPECT_FALSE(TelemetryEnabled());
  EXPECT_EQ(GetTelemetrySink(), nullptr);
  // Emitting with no sink is a no-op, not a crash.
  EADRL_TELEMETRY("noop", {"value", 1.0});
}

TEST(ObsTelemetryTest, SetAndUnsetSink) {
  CollectingSink sink;
  SetTelemetrySink(&sink);
  EXPECT_TRUE(TelemetryEnabled());
  EADRL_TELEMETRY("ping", {"n", size_t{7}});
  SetTelemetrySink(nullptr);
  EXPECT_FALSE(TelemetryEnabled());
  EADRL_TELEMETRY("dropped", {"n", 1});

  std::vector<TelemetryEvent> events = sink.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].kind, "ping");
  ASSERT_EQ(events[0].fields.size(), 1u);
  EXPECT_EQ(events[0].fields[0].inum, 7);
  EXPECT_GT(events[0].unix_seconds, 0.0);
}

TEST(ObsTelemetryTest, JsonLinesShapeParses) {
  std::ostringstream out;
  JsonLinesSink sink(&out);
  SetTelemetrySink(&sink);
  EADRL_TELEMETRY("episode", {"episode", 3}, {"reward", 0.75},
                  {"name", "EA-DRL"});
  EADRL_TELEMETRY("weird", {"text", "quote\" slash\\ line\nend"},
                  {"nan", std::nan("")});
  SetTelemetrySink(nullptr);

  std::istringstream in(out.str());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    std::map<std::string, std::string> obj;
    ASSERT_TRUE(ParseFlatJsonObject(line, &obj)) << line;
    EXPECT_EQ(obj.count("ts"), 1u);
    EXPECT_EQ(obj.count("unix"), 1u);
    EXPECT_EQ(obj.count("kind"), 1u);
  }
  EXPECT_EQ(lines, 2u);

  // Golden check of one serialized event (fixed timestamp).
  TelemetryEvent event;
  event.kind = "golden";
  event.unix_seconds = 0.5;
  event.fields.emplace_back("a", 1);
  event.fields.emplace_back("b", "x");
  EXPECT_EQ(EventToJson(event),
            "{\"ts\":\"1970-01-01T00:00:00.500Z\",\"unix\":0.5,"
            "\"kind\":\"golden\",\"a\":1,\"b\":\"x\"}");
}

TEST(ObsTelemetryTest, Iso8601Formatting) {
  EXPECT_EQ(FormatIso8601Utc(0.0), "1970-01-01T00:00:00.000Z");
  EXPECT_EQ(FormatIso8601Utc(1e9 + 0.25), "2001-09-09T01:46:40.250Z");
}

TEST(ObsTelemetryScopeTest, AmbientFieldsAppendedWhileScopeAlive) {
  CollectingSink sink;
  SetTelemetrySink(&sink);
  {
    TelemetryScope outer("dataset", "bike");
    EADRL_TELEMETRY("one", {"n", 1});
    {
      TelemetryScope inner("run", "a");
      EADRL_TELEMETRY("two", {"n", 2});
    }
    EADRL_TELEMETRY("three", {"n", 3});
  }
  EADRL_TELEMETRY("four", {"n", 4});
  SetTelemetrySink(nullptr);

  std::vector<TelemetryEvent> events = sink.TakeEvents();
  ASSERT_EQ(events.size(), 4u);
  // Context fields are appended after the event's own fields, outer first.
  ASSERT_EQ(events[0].fields.size(), 2u);
  EXPECT_STREQ(events[0].fields[1].key, "dataset");
  EXPECT_EQ(events[0].fields[1].str, "bike");
  ASSERT_EQ(events[1].fields.size(), 3u);
  EXPECT_STREQ(events[1].fields[1].key, "dataset");
  EXPECT_STREQ(events[1].fields[2].key, "run");
  EXPECT_EQ(events[1].fields[2].str, "a");
  ASSERT_EQ(events[2].fields.size(), 2u);
  ASSERT_EQ(events[3].fields.size(), 1u);
}

TEST(ObsRegistryTest, JsonSnapshotEscapesAwkwardNamesAndLabels) {
  MetricRegistry reg;
  reg.GetCounter("hits\"quoted\"\nline", {{"path", "a,b\"c\\d"}})->Inc(2);

  // The whole snapshot must stay parseable JSON despite the hostile name.
  auto parsed = json::Parse(reg.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* family = parsed->Find("hits\"quoted\"\nline");
  ASSERT_NE(family, nullptr);
  ASSERT_TRUE(family->is_object());
  ASSERT_EQ(family->AsObject().size(), 1u);
  // The signature key round-trips the raw label value.
  EXPECT_NE(family->AsObject()[0].first.find("a,b\"c\\d"), std::string::npos);
  EXPECT_DOUBLE_EQ(
      family->AsObject()[0].second.Find("value")->AsNumber(), 2.0);
}

TEST(ObsRegistryTest, CsvSnapshotQuotesAwkwardFields) {
  MetricRegistry reg;
  reg.GetCounter("say \"hi\"", {{"k", "a,b"}})->Inc();
  reg.GetGauge("plain")->Set(1.0);

  const std::string csv = reg.ToCsv();
  // Quotes are doubled and the whole field wrapped per RFC 4180.
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos) << csv;
  // A label signature containing a comma must be quoted, or column
  // positions shift for every row after it.
  EXPECT_NE(csv.find("\"k=a,b\""), std::string::npos) << csv;
  // Unremarkable fields stay unquoted.
  EXPECT_NE(csv.find("plain,,value,1"), std::string::npos) << csv;
}

TEST(ObsRegistryTest, PrometheusExposition) {
  MetricRegistry reg;
  reg.GetCounter("weird.name-total")->Inc(3);
  reg.GetGauge("temp", {{"room", "a\"b\\c\nd"}})->Set(21.5);
  // Binary-exact bounds and observations keep the %.17g goldens stable.
  Histogram* hist = reg.GetHistogram("lat_seconds", {0.125, 1.0});
  hist->Observe(0.0625);
  hist->Observe(0.5);
  hist->Observe(6.0);

  const std::string prom = reg.ToPrometheus();
  // Metric names are sanitized to the exposition charset.
  EXPECT_NE(prom.find("# TYPE weird_name_total counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("weird_name_total 3\n"), std::string::npos);
  // Label values escape backslash, quote and newline.
  EXPECT_NE(prom.find("temp{room=\"a\\\"b\\\\c\\nd\"} 21.5\n"),
            std::string::npos)
      << prom;
  // Histogram buckets are cumulative and end in +Inf; _sum/_count follow.
  EXPECT_NE(prom.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_bucket{le=\"0.125\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_sum 6.5625\n"), std::string::npos);
}

TEST(ObsTelemetryTest, FileSinkFlushLeavesNoTruncatedFinalLine) {
  const std::string path =
      ::testing::TempDir() + "/eadrl_obs_flush_test.jsonl";
  std::remove(path.c_str());
  {
    JsonLinesSink sink(path);
    ASSERT_TRUE(sink.ok());
    SetTelemetrySink(&sink);
    EADRL_TELEMETRY("first", {"n", 1});
    EADRL_TELEMETRY("second", {"text", "line\nbreak"});
    SetTelemetrySink(nullptr);
    sink.Flush();

    // After Flush the file must contain only complete, parseable lines —
    // a consumer tailing the file never sees a truncated record.
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream contents;
    contents << in.rdbuf();
    const std::string text = contents.str();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    std::istringstream lines(text);
    std::string line;
    size_t n = 0;
    while (std::getline(lines, line)) {
      ++n;
      std::map<std::string, std::string> obj;
      EXPECT_TRUE(ParseFlatJsonObject(line, &obj)) << line;
    }
    EXPECT_EQ(n, 2u);
  }
  std::remove(path.c_str());
}

TEST(ObsTelemetryScopeTest, ScopeUnwindsOnException) {
  ASSERT_TRUE(TelemetryContext().empty());
  try {
    TelemetryScope scope("dataset", "bike");
    ASSERT_EQ(TelemetryContext().size(), 1u);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // Stack unwinding must pop the scope's ambient field.
  EXPECT_TRUE(TelemetryContext().empty());
}

TEST(ObsTelemetryScopeTest, ScopedContextUnwindsOnException) {
  TelemetryScope outer("dataset", "taxi");
  try {
    ScopedTelemetryContext override_ctx(
        {TelemetryField{"run", "worker"}});
    ASSERT_EQ(TelemetryContext().size(), 1u);
    EXPECT_EQ(TelemetryContext()[0].str, "worker");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // The override is rolled back to the ambient context it replaced.
  ASSERT_EQ(TelemetryContext().size(), 1u);
  EXPECT_EQ(TelemetryContext()[0].str, "taxi");
}

TEST(ObsTelemetryScopeTest, SnapshotAndOverrideRestorePreviousContext) {
  TelemetryScope scope("dataset", "taxi");
  std::vector<TelemetryField> snapshot = TelemetryContext();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_STREQ(snapshot[0].key, "dataset");
  EXPECT_EQ(snapshot[0].str, "taxi");

  {
    ScopedTelemetryContext override_ctx({});
    EXPECT_TRUE(TelemetryContext().empty());
  }
  // The previous ambient context is restored when the override dies.
  ASSERT_EQ(TelemetryContext().size(), 1u);
  EXPECT_EQ(TelemetryContext()[0].str, "taxi");
}

}  // namespace
}  // namespace eadrl::obs
