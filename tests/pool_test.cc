#include "models/pool.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "models/forecaster.h"
#include "ts/datasets.h"

namespace eadrl::models {
namespace {

TEST(PoolTest, PaperPoolHasFortyThreeModels) {
  PoolConfig cfg;
  auto pool = BuildPaperPool(cfg);
  EXPECT_EQ(pool.size(), 43u);
}

TEST(PoolTest, ModelNamesAreUnique) {
  PoolConfig cfg;
  auto pool = BuildPaperPool(cfg);
  std::set<std::string> names;
  for (const auto& model : pool) names.insert(model->name());
  EXPECT_EQ(names.size(), pool.size());
}

TEST(PoolTest, FastModeIsSmaller) {
  PoolConfig cfg;
  cfg.fast_mode = true;
  auto pool = BuildPaperPool(cfg);
  EXPECT_EQ(pool.size(), 10u);
}

TEST(PoolTest, CoversAllSixteenFamiliesPlusKnn) {
  PoolConfig cfg;
  auto pool = BuildPaperPool(cfg);
  std::set<std::string> prefixes;
  for (const auto& model : pool) {
    std::string name = model->name();
    prefixes.insert(name.substr(0, name.find('(')));
  }
  // arima, ets-ses/holt/holt-winters, gbm, gp, svr-linear/svr-rbf, rf, ppr,
  // mars, pcr, dt, pls, knn, mlp, lstm, bilstm, cnn-lstm, conv-lstm.
  for (const char* family :
       {"arima", "gbm", "gp", "rf", "ppr", "mars", "pcr", "dt", "pls", "knn",
        "mlp", "lstm", "bilstm", "cnn-lstm", "conv-lstm"}) {
    EXPECT_TRUE(prefixes.count(family)) << "missing family " << family;
  }
}

TEST(PoolTest, FastPoolFitsAndForecastsOnRealisticData) {
  auto series = ts::MakeDataset(2, 42, 200);
  ASSERT_TRUE(series.ok());
  auto split = ts::SplitTrainTest(*series, 0.8);

  PoolConfig cfg;
  cfg.fast_mode = true;
  cfg.nn_epochs = 3;
  auto pool = FitPool(BuildPaperPool(cfg), split.train);
  EXPECT_GE(pool.size(), 8u);  // nearly all models fit on 160 points.

  for (auto& model : pool) {
    math::Vec preds = RollingForecast(model.get(), split.test);
    ASSERT_EQ(preds.size(), split.test.size());
    for (double p : preds) {
      EXPECT_TRUE(std::isfinite(p)) << model->name();
    }
  }
}

TEST(PoolTest, FitPoolDropsModelsThatCannotFit) {
  // A series too short for ARIMA but long enough for some others.
  ts::Series tiny("tiny", math::Vec(12, 1.0));
  PoolConfig cfg;
  cfg.fast_mode = true;
  cfg.embedding_dim = 3;
  auto pool = FitPool(BuildPaperPool(cfg), tiny);
  // Some models were dropped, but the function did not crash.
  EXPECT_LT(pool.size(), 10u);
}

}  // namespace
}  // namespace eadrl::models
