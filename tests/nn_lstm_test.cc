#include "nn/lstm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/param.h"

namespace eadrl::nn {
namespace {

TEST(LstmTest, OutputShapes) {
  Rng rng(1);
  Lstm lstm(2, 4, rng);
  std::vector<math::Vec> seq{{1.0, 0.0}, {0.5, -0.5}, {0.0, 1.0}};
  auto hs = lstm.Forward(seq);
  EXPECT_EQ(hs.size(), 3u);
  for (const auto& h : hs) EXPECT_EQ(h.size(), 4u);
}

TEST(LstmTest, HiddenStatesBounded) {
  // h = o * tanh(c) with o in (0,1), so |h| < 1.
  Rng rng(2);
  Lstm lstm(1, 8, rng);
  std::vector<math::Vec> seq(20, math::Vec{100.0});
  auto hs = lstm.Forward(seq);
  for (const auto& h : hs) {
    for (double v : h) EXPECT_LT(std::fabs(v), 1.0);
  }
}

TEST(LstmTest, GradCheckThroughTime) {
  Rng rng(3);
  const size_t hidden = 3;
  Lstm lstm(1, hidden, rng);
  std::vector<math::Vec> seq{{0.5}, {-0.3}, {0.8}, {0.1}};
  math::Vec target{0.2, -0.4, 0.6};

  auto loss_value = [&]() {
    auto hs = lstm.Forward(seq);
    return MseLoss(hs.back(), target).value;
  };

  auto hs = lstm.Forward(seq);
  LossResult loss = MseLoss(hs.back(), target);
  ZeroGrads(lstm.Params());
  std::vector<math::Vec> grad_hidden(seq.size(), math::Vec(hidden, 0.0));
  grad_hidden.back() = loss.grad;
  std::vector<math::Vec> dx = lstm.Backward(grad_hidden);

  const double eps = 1e-6;
  for (Param* p : lstm.Params()) {
    for (size_t i = 0; i < p->value.data().size(); ++i) {
      double orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      double up = loss_value();
      p->value.data()[i] = orig - eps;
      double down = loss_value();
      p->value.data()[i] = orig;
      EXPECT_NEAR(p->grad.data()[i], (up - down) / (2.0 * eps), 1e-5);
    }
  }
  // Input gradients.
  for (size_t t = 0; t < seq.size(); ++t) {
    double orig = seq[t][0];
    seq[t][0] = orig + eps;
    double up = loss_value();
    seq[t][0] = orig - eps;
    double down = loss_value();
    seq[t][0] = orig;
    EXPECT_NEAR(dx[t][0], (up - down) / (2.0 * eps), 1e-5);
  }
}

TEST(LstmTest, LearnsToRememberFirstInput) {
  // Target = first element of the sequence; the LSTM must carry it across
  // 5 steps. A working BPTT should drive the loss near zero.
  Rng rng(5);
  Lstm lstm(1, 8, rng);
  Dense head(8, 1, Activation::kIdentity, rng);
  std::vector<Param*> params = lstm.Params();
  for (Param* p : head.Params()) params.push_back(p);
  Adam opt(0.02);
  opt.Register(params);

  Rng data_rng(9);
  double ema_loss = 1.0;
  for (int step = 0; step < 3000; ++step) {
    std::vector<math::Vec> seq;
    double first = data_rng.Uniform(-1, 1);
    seq.push_back({first});
    for (int t = 1; t < 5; ++t) seq.push_back({data_rng.Uniform(-1, 1)});

    auto hs = lstm.Forward(seq);
    math::Vec pred = head.Forward(hs.back());
    LossResult loss = MseLoss(pred, {first});
    math::Vec dh = head.Backward(loss.grad);
    std::vector<math::Vec> grad_hidden(seq.size(), math::Vec(8, 0.0));
    grad_hidden.back() = dh;
    lstm.Backward(grad_hidden);
    ClipGradNorm(params, 5.0);
    opt.StepAndZero();
    ema_loss = 0.99 * ema_loss + 0.01 * loss.value;
  }
  EXPECT_LT(ema_loss, 0.05);
}

}  // namespace
}  // namespace eadrl::nn
