#include "models/linear.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eadrl::models {
namespace {

TEST(RidgeTest, RecoversLinearCoefficients) {
  Rng rng(1);
  math::Matrix x(100, 3);
  math::Vec y(100);
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.Uniform(-1, 1);
    y[i] = 2.0 * x(i, 0) - 1.0 * x(i, 1) + 0.5 * x(i, 2) + 3.0;
  }
  RidgeRegressor ridge(1e-6);
  ASSERT_TRUE(ridge.Fit(x, y).ok());
  EXPECT_NEAR(ridge.coefficients()[0], 2.0, 1e-3);
  EXPECT_NEAR(ridge.coefficients()[1], -1.0, 1e-3);
  EXPECT_NEAR(ridge.coefficients()[2], 0.5, 1e-3);
  EXPECT_NEAR(ridge.intercept(), 3.0, 1e-3);
  EXPECT_NEAR(ridge.Predict({1, 1, 1}), 4.5, 1e-2);
}

TEST(RidgeTest, InterceptNotPenalized) {
  // Large lambda shrinks slopes but the intercept should track the mean.
  Rng rng(2);
  math::Matrix x(50, 1);
  math::Vec y(50);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    y[i] = 100.0 + 0.1 * x(i, 0);
  }
  RidgeRegressor ridge(1e6);
  ASSERT_TRUE(ridge.Fit(x, y).ok());
  EXPECT_NEAR(ridge.Predict({0.0}), 100.0, 0.5);
}

TEST(RidgeTest, RejectsEmpty) {
  RidgeRegressor ridge;
  EXPECT_FALSE(ridge.Fit(math::Matrix(), {}).ok());
}

TEST(KnnTest, ExactNeighborPredictionWithKOne) {
  math::Matrix x{{0.0}, {1.0}, {2.0}};
  math::Vec y{10, 20, 30};
  KnnRegressor knn(1);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(knn.Predict({1.1}), 20.0);
}

TEST(KnnTest, AveragesNeighborsUnweighted) {
  math::Matrix x{{0.0}, {1.0}, {100.0}};
  math::Vec y{10, 20, 1000};
  KnnRegressor knn(2, /*distance_weighted=*/false);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(knn.Predict({0.5}), 15.0);
}

TEST(KnnTest, DistanceWeightingFavorsCloserNeighbor) {
  math::Matrix x{{0.0}, {1.0}};
  math::Vec y{0, 100};
  KnnRegressor knn(2, /*distance_weighted=*/true);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_LT(knn.Predict({0.1}), 50.0);
  EXPECT_GT(knn.Predict({0.9}), 50.0);
}

TEST(KnnTest, KLargerThanDataClampsToAll) {
  math::Matrix x{{0.0}, {1.0}};
  math::Vec y{0, 10};
  KnnRegressor knn(50, false);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(knn.Predict({0.5}), 5.0);
}

TEST(KnnTest, RejectsZeroK) {
  math::Matrix x{{0.0}};
  KnnRegressor knn(0);
  EXPECT_FALSE(knn.Fit(x, {1.0}).ok());
}

}  // namespace
}  // namespace eadrl::models
