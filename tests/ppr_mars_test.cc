#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/mars.h"
#include "models/ppr.h"

namespace eadrl::models {
namespace {

TEST(BinnedSmootherTest, FitsMonotoneFunction) {
  math::Vec x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i * 0.1);
    y.push_back(2.0 * i * 0.1);
  }
  BinnedSmoother sm(10);
  ASSERT_TRUE(sm.Fit(x, y).ok());
  EXPECT_NEAR(sm.Predict(5.0), 10.0, 0.5);
}

TEST(BinnedSmootherTest, ClampsOutsideRange) {
  math::Vec x{0, 1, 2, 3}, y{0, 1, 2, 3};
  BinnedSmoother sm(2);
  ASSERT_TRUE(sm.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(sm.Predict(-100.0), sm.Predict(0.0));
  EXPECT_DOUBLE_EQ(sm.Predict(100.0), sm.Predict(3.0));
}

TEST(PprTest, FitsAdditiveRidgeFunction) {
  // y = g(w . x) with g(z) = z^2, w = (1, -1)/sqrt(2).
  Rng rng(1);
  math::Matrix x(400, 2);
  math::Vec y(400);
  for (size_t i = 0; i < 400; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);
    double z = (x(i, 0) - x(i, 1)) / std::sqrt(2.0);
    y[i] = z * z;
  }
  PprRegressor::Params p;
  p.num_terms = 3;
  p.backfit_passes = 2;
  PprRegressor ppr(p);
  ASSERT_TRUE(ppr.Fit(x, y).ok());
  double mse = 0.0;
  for (size_t i = 0; i < 400; ++i) {
    double d = ppr.Predict(x.Row(i)) - y[i];
    mse += d * d;
  }
  // Variance of y is ~0.09; PPR should capture a good share of it.
  EXPECT_LT(mse / 400.0, 0.05);
}

TEST(PprTest, ConstantTarget) {
  math::Matrix x(20, 2);
  Rng rng(2);
  for (double& v : x.data()) v = rng.Uniform(0, 1);
  math::Vec y(20, 7.0);
  PprRegressor ppr(PprRegressor::Params{});
  ASSERT_TRUE(ppr.Fit(x, y).ok());
  EXPECT_NEAR(ppr.Predict({0.5, 0.5}), 7.0, 1e-6);
}

TEST(MarsTest, FitsHingeFunction) {
  // y = max(0, x - 0.5), exactly representable with one hinge.
  Rng rng(3);
  math::Matrix x(300, 1);
  math::Vec y(300);
  for (size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.Uniform(0, 1);
    y[i] = std::max(0.0, x(i, 0) - 0.5);
  }
  MarsRegressor::Params p;
  p.max_terms = 6;
  MarsRegressor mars(p);
  ASSERT_TRUE(mars.Fit(x, y).ok());
  double mse = 0.0;
  for (size_t i = 0; i < 300; ++i) {
    double d = mars.Predict(x.Row(i)) - y[i];
    mse += d * d;
  }
  EXPECT_LT(mse / 300.0, 1e-3);
  EXPECT_GT(mars.num_bases(), 0u);
}

TEST(MarsTest, PiecewiseLinearVShape) {
  Rng rng(4);
  math::Matrix x(300, 1);
  math::Vec y(300);
  for (size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    y[i] = std::fabs(x(i, 0));
  }
  MarsRegressor::Params p;
  p.max_terms = 8;
  MarsRegressor mars(p);
  ASSERT_TRUE(mars.Fit(x, y).ok());
  EXPECT_NEAR(mars.Predict({0.8}), 0.8, 0.1);
  EXPECT_NEAR(mars.Predict({-0.8}), 0.8, 0.1);
  EXPECT_NEAR(mars.Predict({0.0}), 0.0, 0.12);
}

TEST(MarsTest, PruningReducesOrKeepsBases) {
  Rng rng(5);
  math::Matrix x(200, 2);
  math::Vec y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);  // irrelevant feature.
    y[i] = x(i, 0) + rng.Normal(0, 0.05);
  }
  MarsRegressor::Params no_prune;
  no_prune.max_terms = 12;
  no_prune.prune = false;
  MarsRegressor a(no_prune);
  ASSERT_TRUE(a.Fit(x, y).ok());

  MarsRegressor::Params prune = no_prune;
  prune.prune = true;
  MarsRegressor b(prune);
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_LE(b.num_bases(), a.num_bases());
}

TEST(MarsTest, RejectsTinyData) {
  MarsRegressor mars(MarsRegressor::Params{});
  math::Matrix x(2, 1);
  EXPECT_FALSE(mars.Fit(x, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace eadrl::models
