#include "ts/generator_kit.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/stats.h"

namespace eadrl::ts {
namespace {

TEST(GeneratorKitTest, SeasonalWavePeriodicity) {
  math::Vec w = SeasonalWave(100, 10.0, 2.0);
  for (size_t t = 0; t + 10 < w.size(); ++t) {
    EXPECT_NEAR(w[t], w[t + 10], 1e-9);
  }
  // Sampled maximum is close to (and never exceeds) the amplitude.
  EXPECT_LE(math::Max(w), 2.0 + 1e-12);
  EXPECT_GT(math::Max(w), 1.8);
}

TEST(GeneratorKitTest, LinearTrendEndpoints) {
  math::Vec t = LinearTrend(11, 5.0);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[10], 5.0);
  EXPECT_NEAR(t[5], 2.5, 1e-12);
}

TEST(GeneratorKitTest, Ar1NoiseIsAutocorrelated) {
  Rng rng(1);
  math::Vec x = Ar1Noise(5000, 0.9, 1.0, rng);
  EXPECT_GT(math::Autocorrelation(x, 1), 0.8);
  Rng rng2(1);
  math::Vec white = Ar1Noise(5000, 0.0, 1.0, rng2);
  EXPECT_LT(std::fabs(math::Autocorrelation(white, 1)), 0.1);
}

TEST(GeneratorKitTest, RandomWalkVarianceGrows) {
  Rng rng(2);
  math::Vec w = RandomWalk(1000, 1.0, rng);
  double early = 0.0, late = 0.0;
  for (size_t i = 0; i < 100; ++i) early += w[i] * w[i];
  for (size_t i = 900; i < 1000; ++i) late += w[i] * w[i];
  EXPECT_GT(late, early);
}

TEST(GeneratorKitTest, GeometricRandomWalkStaysPositive) {
  Rng rng(3);
  math::Vec p = GeometricRandomWalk(2000, 100.0, 0.0, 0.01, 0.9, rng);
  for (double v : p) EXPECT_GT(v, 0.0);
  EXPECT_NEAR(p[0], 100.0, 10.0);
}

TEST(GeneratorKitTest, LevelShiftsPiecewiseConstant) {
  Rng rng(4);
  math::Vec l = LevelShifts(500, 3, 5.0, rng);
  size_t changes = 0;
  for (size_t t = 1; t < l.size(); ++t) {
    if (l[t] != l[t - 1]) ++changes;
  }
  EXPECT_LE(changes, 3u);
  EXPECT_GE(changes, 1u);
}

TEST(GeneratorKitTest, SpikeTrainNonNegativeAndDecaying) {
  Rng rng(5);
  math::Vec s = SpikeTrain(1000, 0.02, 10.0, 0.8, rng);
  for (double v : s) EXPECT_GE(v, 0.0);
  EXPECT_GT(math::Max(s), 0.0);
}

TEST(GeneratorKitTest, RegimeMultiplierTwoLevels) {
  Rng rng(6);
  math::Vec r = RegimeMultiplier(1000, 1.0, 3.0, 0.05, rng);
  for (double v : r) {
    EXPECT_TRUE(v == 1.0 || v == 3.0);
  }
}

TEST(GeneratorKitTest, ClipInPlace) {
  math::Vec v{-2, 0, 5, 9};
  ClipInPlace(&v, 0.0, 5.0);
  EXPECT_EQ(v, (math::Vec{0, 0, 5, 5}));
}

TEST(GeneratorKitTest, MixSumsComponents) {
  math::Vec m = Mix({{1, 2}, {10, 20}, {100, 200}});
  EXPECT_EQ(m, (math::Vec{111, 222}));
}

}  // namespace
}  // namespace eadrl::ts
