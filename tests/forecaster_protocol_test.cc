// Property tests: every model in the paper's 43-configuration pool obeys the
// Forecaster protocol — finite predictions, idempotent PredictNext, state
// advanced by Observe, and correct rolling-forecast behaviour.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "models/forecaster.h"
#include "models/pool.h"
#include "ts/datasets.h"

namespace eadrl::models {
namespace {

// A single fitted pool shared by all protocol tests (fitting 43 models once
// keeps the suite fast).
class FittedPool {
 public:
  static FittedPool& Get() {
    static FittedPool& instance = *new FittedPool();
    return instance;
  }

  const std::vector<std::unique_ptr<Forecaster>>& models() const {
    return models_;
  }
  const ts::Series& train() const { return train_; }

 private:
  FittedPool() {
    auto series = ts::MakeDataset(2, 42, 180);
    EADRL_CHECK(series.ok());
    train_ = *series;
    PoolConfig cfg;
    cfg.nn_epochs = 2;
    models_ = FitPool(BuildPaperPool(cfg), train_);
    EADRL_CHECK_EQ(models_.size(), 43u);
  }

  ts::Series train_;
  std::vector<std::unique_ptr<Forecaster>> models_;
};

class PoolProtocol : public ::testing::TestWithParam<size_t> {};

TEST_P(PoolProtocol, PredictNextIsFiniteAndIdempotent) {
  Forecaster* model = FittedPool::Get().models()[GetParam()].get();
  double p1 = model->PredictNext();
  double p2 = model->PredictNext();
  EXPECT_TRUE(std::isfinite(p1)) << model->name();
  EXPECT_DOUBLE_EQ(p1, p2) << model->name()
                           << ": PredictNext must not mutate state";
}

TEST_P(PoolProtocol, PredictionInPlausibleRange) {
  // The humidity series lives in [0, 100]; one-step forecasts of a sane
  // model stay within a generous multiple of the observed range.
  Forecaster* model = FittedPool::Get().models()[GetParam()].get();
  double p = model->PredictNext();
  EXPECT_GT(p, -100.0) << model->name();
  EXPECT_LT(p, 300.0) << model->name();
}

TEST_P(PoolProtocol, ObserveShiftsPredictionEventually) {
  // After observing a burst of far-away values, the forecast must move
  // toward them (every pool model conditions on recent history).
  Forecaster* model = FittedPool::Get().models()[GetParam()].get();
  double before = model->PredictNext();
  for (int i = 0; i < 30; ++i) model->Observe(95.0);
  double after = model->PredictNext();
  EXPECT_TRUE(std::isfinite(after)) << model->name();
  EXPECT_GT(after, before) << model->name();
  // Restore something near the original regime for subsequent tests.
  for (int i = 0; i < 30; ++i) model->Observe(60.0);
}

TEST_P(PoolProtocol, NamesAreStable) {
  const auto& models = FittedPool::Get().models();
  EXPECT_FALSE(models[GetParam()]->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPoolModels, PoolProtocol, ::testing::Range<size_t>(0, 43),
    [](const ::testing::TestParamInfo<size_t>& param_info) {
      std::string name = FittedPool::Get().models()[param_info.param]->name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace eadrl::models
