#include "baselines/stacking.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eadrl::baselines {
namespace {

TEST(StackingTest, LearnsToFollowAccurateModel) {
  Rng rng(1);
  const size_t t_steps = 200;
  math::Matrix preds(t_steps, 3);
  math::Vec actuals(t_steps);
  for (size_t t = 0; t < t_steps; ++t) {
    double x = std::sin(0.2 * static_cast<double>(t)) * 5.0;
    actuals[t] = x;
    preds(t, 0) = x + rng.Normal(0, 0.05);
    preds(t, 1) = x + rng.Normal(0, 2.0);
    preds(t, 2) = -x;  // anti-correlated junk.
  }
  StackingCombiner stacking(30, 7);
  ASSERT_TRUE(stacking.Initialize(preds, actuals).ok());

  // On fresh points, the meta-learner output should track model 0.
  double mse = 0.0;
  for (size_t t = 0; t < t_steps; ++t) {
    double p = stacking.Predict(preds.Row(t));
    mse += (p - actuals[t]) * (p - actuals[t]);
  }
  EXPECT_LT(mse / static_cast<double>(t_steps), 0.5);
}

TEST(StackingTest, NonlinearCombinationPossible) {
  // Truth = max(model0, model1); a linear combiner cannot represent this,
  // a forest can approximate it.
  Rng rng(2);
  const size_t t_steps = 400;
  math::Matrix preds(t_steps, 2);
  math::Vec actuals(t_steps);
  for (size_t t = 0; t < t_steps; ++t) {
    preds(t, 0) = rng.Uniform(-1, 1);
    preds(t, 1) = rng.Uniform(-1, 1);
    actuals[t] = std::max(preds(t, 0), preds(t, 1));
  }
  StackingCombiner stacking(40, 3);
  ASSERT_TRUE(stacking.Initialize(preds, actuals).ok());
  double mse = 0.0;
  for (size_t t = 0; t < t_steps; ++t) {
    double p = stacking.Predict(preds.Row(t));
    mse += (p - actuals[t]) * (p - actuals[t]);
  }
  // Best convex combination has MSE ~ E[(max - avg)^2] ~ 0.11; the forest
  // should beat that clearly.
  EXPECT_LT(mse / static_cast<double>(t_steps), 0.05);
}

TEST(StackingTest, RejectsEmptyValidation) {
  StackingCombiner stacking;
  EXPECT_FALSE(stacking.Initialize(math::Matrix(), math::Vec{}).ok());
}

TEST(StackingTest, UpdateIsNoOp) {
  Rng rng(3);
  math::Matrix preds(50, 2);
  math::Vec actuals(50);
  for (size_t t = 0; t < 50; ++t) {
    actuals[t] = rng.Uniform(0, 1);
    preds(t, 0) = actuals[t];
    preds(t, 1) = actuals[t] + 1.0;
  }
  StackingCombiner stacking;
  ASSERT_TRUE(stacking.Initialize(preds, actuals).ok());
  double before = stacking.Predict({0.5, 1.5});
  for (int i = 0; i < 20; ++i) stacking.Update({0.5, 1.5}, 99.0);
  EXPECT_DOUBLE_EQ(stacking.Predict({0.5, 1.5}), before);
}

}  // namespace
}  // namespace eadrl::baselines
