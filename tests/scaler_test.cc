#include "ts/scaler.h"

#include <cmath>

#include <gtest/gtest.h>

namespace eadrl::ts {
namespace {

TEST(MinMaxScalerTest, MapsToUnitInterval) {
  MinMaxScaler s;
  s.Fit({10, 20, 30});
  EXPECT_DOUBLE_EQ(s.Transform(10), 0.0);
  EXPECT_DOUBLE_EQ(s.Transform(30), 1.0);
  EXPECT_DOUBLE_EQ(s.Transform(20), 0.5);
}

TEST(MinMaxScalerTest, RoundTrip) {
  MinMaxScaler s;
  s.Fit({-5, 0, 15});
  for (double x : {-5.0, 0.0, 7.3, 15.0, 20.0}) {
    EXPECT_NEAR(s.Inverse(s.Transform(x)), x, 1e-12);
  }
}

TEST(MinMaxScalerTest, ConstantInputMapsToHalf) {
  MinMaxScaler s;
  s.Fit({4, 4, 4});
  EXPECT_DOUBLE_EQ(s.Transform(4), 0.5);
}

TEST(MinMaxScalerTest, VectorOverloads) {
  MinMaxScaler s;
  s.Fit({0, 10});
  math::Vec t = s.Transform(math::Vec{0, 5, 10});
  EXPECT_EQ(t, (math::Vec{0.0, 0.5, 1.0}));
  math::Vec back = s.Inverse(t);
  EXPECT_EQ(back, (math::Vec{0.0, 5.0, 10.0}));
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  StandardScaler s;
  math::Vec v{1, 2, 3, 4, 5};
  s.Fit(v);
  EXPECT_DOUBLE_EQ(s.Transform(3.0), 0.0);
  math::Vec t = s.Transform(v);
  double mean = 0.0;
  for (double x : t) mean += x;
  EXPECT_NEAR(mean / 5.0, 0.0, 1e-12);
}

TEST(StandardScalerTest, RoundTrip) {
  StandardScaler s;
  s.Fit({3, 7, 11, 2});
  for (double x : {-1.0, 3.5, 100.0}) {
    EXPECT_NEAR(s.Inverse(s.Transform(x)), x, 1e-10);
  }
}

TEST(StandardScalerTest, FromMomentsMatchesFittedScaler) {
  // The serving layer builds per-tenant scalers from stored moments rather
  // than raw history; the two construction paths must agree.
  StandardScaler fitted;
  fitted.Fit({1, 3, 5, 7});  // mean 4, sample stddev sqrt(20 / 3).
  StandardScaler direct =
      StandardScaler::FromMoments(4.0, std::sqrt(20.0 / 3.0));
  for (double x : {-2.0, 0.0, 4.0, 9.75}) {
    EXPECT_DOUBLE_EQ(direct.Transform(x), fitted.Transform(x));
    EXPECT_DOUBLE_EQ(direct.Inverse(x), fitted.Inverse(x));
  }
}

TEST(StandardScalerTest, FromMomentsRoundTripsExactlyAtTheMean) {
  StandardScaler s = StandardScaler::FromMoments(250.0, 12.5);
  EXPECT_DOUBLE_EQ(s.Transform(250.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Inverse(0.0), 250.0);
  for (double x : {-10.0, 0.5, 312.5}) {
    EXPECT_NEAR(s.Inverse(s.Transform(x)), x, 1e-9);
  }
}

TEST(StandardScalerTest, ConstantInputTransformsToZero) {
  StandardScaler s;
  s.Fit({2, 2, 2});
  EXPECT_DOUBLE_EQ(s.Transform(5.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Inverse(0.0), 2.0);
}

}  // namespace
}  // namespace eadrl::ts
