#include "ts/scaler.h"

#include <gtest/gtest.h>

namespace eadrl::ts {
namespace {

TEST(MinMaxScalerTest, MapsToUnitInterval) {
  MinMaxScaler s;
  s.Fit({10, 20, 30});
  EXPECT_DOUBLE_EQ(s.Transform(10), 0.0);
  EXPECT_DOUBLE_EQ(s.Transform(30), 1.0);
  EXPECT_DOUBLE_EQ(s.Transform(20), 0.5);
}

TEST(MinMaxScalerTest, RoundTrip) {
  MinMaxScaler s;
  s.Fit({-5, 0, 15});
  for (double x : {-5.0, 0.0, 7.3, 15.0, 20.0}) {
    EXPECT_NEAR(s.Inverse(s.Transform(x)), x, 1e-12);
  }
}

TEST(MinMaxScalerTest, ConstantInputMapsToHalf) {
  MinMaxScaler s;
  s.Fit({4, 4, 4});
  EXPECT_DOUBLE_EQ(s.Transform(4), 0.5);
}

TEST(MinMaxScalerTest, VectorOverloads) {
  MinMaxScaler s;
  s.Fit({0, 10});
  math::Vec t = s.Transform(math::Vec{0, 5, 10});
  EXPECT_EQ(t, (math::Vec{0.0, 0.5, 1.0}));
  math::Vec back = s.Inverse(t);
  EXPECT_EQ(back, (math::Vec{0.0, 5.0, 10.0}));
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  StandardScaler s;
  math::Vec v{1, 2, 3, 4, 5};
  s.Fit(v);
  EXPECT_DOUBLE_EQ(s.Transform(3.0), 0.0);
  math::Vec t = s.Transform(v);
  double mean = 0.0;
  for (double x : t) mean += x;
  EXPECT_NEAR(mean / 5.0, 0.0, 1e-12);
}

TEST(StandardScalerTest, RoundTrip) {
  StandardScaler s;
  s.Fit({3, 7, 11, 2});
  for (double x : {-1.0, 3.5, 100.0}) {
    EXPECT_NEAR(s.Inverse(s.Transform(x)), x, 1e-10);
  }
}

TEST(StandardScalerTest, ConstantInputTransformsToZero) {
  StandardScaler s;
  s.Fit({2, 2, 2});
  EXPECT_DOUBLE_EQ(s.Transform(5.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Inverse(0.0), 2.0);
}

}  // namespace
}  // namespace eadrl::ts
