#include "nn/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

namespace eadrl::nn {
namespace {

TEST(SerializeTest, RoundTripPreservesValuesExactly) {
  std::vector<math::Matrix> matrices;
  matrices.push_back(math::Matrix{{1.0, -2.5}, {3.14159265358979, 0.0}});
  matrices.push_back(math::Matrix(3, 1, 1e-17));

  std::stringstream stream;
  ASSERT_TRUE(WriteMatrices(stream, matrices).ok());
  auto loaded = ReadMatrices(stream);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_EQ((*loaded)[k].rows(), matrices[k].rows());
    EXPECT_EQ((*loaded)[k].cols(), matrices[k].cols());
    for (size_t i = 0; i < matrices[k].data().size(); ++i) {
      EXPECT_DOUBLE_EQ((*loaded)[k].data()[i], matrices[k].data()[i]);
    }
  }
}

TEST(SerializeTest, EmptyListRoundTrips) {
  std::stringstream stream;
  ASSERT_TRUE(WriteMatrices(stream, {}).ok());
  auto loaded = ReadMatrices(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(SerializeTest, RejectsBadHeader) {
  std::stringstream stream("garbage 3");
  EXPECT_FALSE(ReadMatrices(stream).ok());
}

TEST(SerializeTest, RejectsTruncatedValues) {
  std::stringstream stream("matrices 1\n2 2\n1.0 2.0 3.0");
  EXPECT_FALSE(ReadMatrices(stream).ok());
}

TEST(SerializeTest, RejectsZeroShape) {
  std::stringstream stream("matrices 1\n0 2\n");
  EXPECT_FALSE(ReadMatrices(stream).ok());
}

}  // namespace
}  // namespace eadrl::nn
