#include "models/tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eadrl::models {
namespace {

// y = step function of x0.
void MakeStepData(math::Matrix* x, math::Vec* y) {
  *x = math::Matrix(20, 1);
  y->resize(20);
  for (size_t i = 0; i < 20; ++i) {
    (*x)(i, 0) = static_cast<double>(i);
    (*y)[i] = i < 10 ? 1.0 : 5.0;
  }
}

TEST(TreeTest, FitsStepFunctionExactly) {
  math::Matrix x;
  math::Vec y;
  MakeStepData(&x, &y);
  RegressionTree tree(TreeParams{4, 1, 0});
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(tree.Predict({3.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.Predict({15.0}), 5.0);
}

TEST(TreeTest, DepthZeroGivesMeanPrediction) {
  math::Matrix x;
  math::Vec y;
  MakeStepData(&x, &y);
  RegressionTree tree(TreeParams{0, 1, 0});
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(tree.Predict({0.0}), 3.0);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(TreeTest, MinSamplesLeafLimitsSplits) {
  math::Matrix x;
  math::Vec y;
  MakeStepData(&x, &y);
  RegressionTree tree(TreeParams{10, 10, 0});
  ASSERT_TRUE(tree.Fit(x, y).ok());
  // With min leaf 10 and 20 samples, exactly one split is possible.
  EXPECT_LE(tree.num_nodes(), 3u);
}

TEST(TreeTest, ConstantTargetSingleLeaf) {
  math::Matrix x(10, 2);
  math::Vec y(10, 4.2);
  RegressionTree tree(TreeParams{8, 1, 0});
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({0, 0}), 4.2);
}

TEST(TreeTest, PicksInformativeFeature) {
  // Feature 1 is pure noise; feature 0 determines y.
  Rng rng(3);
  math::Matrix x(100, 2);
  math::Vec y(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.Uniform(0, 1);
    x(i, 1) = rng.Uniform(0, 1);
    y[i] = x(i, 0) > 0.5 ? 10.0 : -10.0;
  }
  RegressionTree tree(TreeParams{2, 5, 0});
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_GT(tree.Predict({0.9, 0.1}), 5.0);
  EXPECT_LT(tree.Predict({0.1, 0.9}), -5.0);
}

TEST(TreeTest, FitSubsetUsesOnlyGivenRows) {
  math::Matrix x;
  math::Vec y;
  MakeStepData(&x, &y);
  // Only rows from the first regime.
  std::vector<size_t> subset{0, 1, 2, 3, 4};
  RegressionTree tree(TreeParams{4, 1, 0});
  ASSERT_TRUE(tree.FitSubset(x, y, subset).ok());
  EXPECT_DOUBLE_EQ(tree.Predict({15.0}), 1.0);
}

TEST(TreeTest, RejectsMismatchedData) {
  math::Matrix x(5, 1);
  math::Vec y(4);
  RegressionTree tree(TreeParams{});
  EXPECT_FALSE(tree.Fit(x, y).ok());
}

TEST(TreeTest, FeatureSubsamplingRequiresRng) {
  Rng rng(1);
  math::Matrix x;
  math::Vec y;
  MakeStepData(&x, &y);
  RegressionTree tree(TreeParams{4, 1, 1}, &rng);
  EXPECT_TRUE(tree.Fit(x, y).ok());
}

}  // namespace
}  // namespace eadrl::models
