#include "stats/ranking.h"

#include <gtest/gtest.h>

namespace eadrl::stats {
namespace {

TEST(RankingTest, RankMatrixPerDataset) {
  // 2 datasets x 3 methods.
  math::Matrix errors{{1.0, 3.0, 2.0}, {5.0, 4.0, 6.0}};
  math::Matrix ranks = RankMatrix(errors);
  EXPECT_EQ(ranks.Row(0), (math::Vec{1, 3, 2}));
  EXPECT_EQ(ranks.Row(1), (math::Vec{2, 1, 3}));
}

TEST(RankingTest, SummaryMeansAndNames) {
  math::Matrix errors{{1.0, 3.0, 2.0}, {5.0, 4.0, 6.0}};
  auto summary = SummarizeRanks(errors, {"a", "b", "c"});
  ASSERT_EQ(summary.size(), 3u);
  EXPECT_EQ(summary[0].method, "a");
  EXPECT_DOUBLE_EQ(summary[0].mean_rank, 1.5);
  EXPECT_DOUBLE_EQ(summary[1].mean_rank, 2.0);
  EXPECT_DOUBLE_EQ(summary[2].mean_rank, 2.5);
}

TEST(RankingTest, TiesShareFractionalRank) {
  math::Matrix errors{{1.0, 1.0, 2.0}};
  math::Matrix ranks = RankMatrix(errors);
  EXPECT_DOUBLE_EQ(ranks(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(ranks(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(ranks(0, 2), 3.0);
}

TEST(RankingTest, StddevZeroForConsistentRanks) {
  math::Matrix errors{{1.0, 2.0}, {1.0, 2.0}};
  auto summary = SummarizeRanks(errors, {"a", "b"});
  EXPECT_DOUBLE_EQ(summary[0].stddev_rank, 0.0);
  EXPECT_DOUBLE_EQ(summary[1].stddev_rank, 0.0);
}

}  // namespace
}  // namespace eadrl::stats
