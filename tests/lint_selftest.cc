// Self-test for eadrl_lint: every rule must fire on its known-bad fixture
// and stay silent on the matching known-good fixture. Fixtures live in
// tests/lint_fixtures/ (skipped by the eadrl_lint directory walker and not
// compiled — some are deliberately ill-formed). The fixture *contents* come
// from disk; the *path* each is checked under is chosen per case, because
// several rules are scope-sensitive (src/-only bans, clock-owner
// directories, guard canonicalization).

#include "tools/lint/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace eadrl::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(EADRL_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Config RegistryWith(std::vector<std::string> kinds) {
  Config config;
  config.have_events_registry = true;
  size_t line = 1;
  for (std::string& kind : kinds) {
    config.registered_events.emplace(std::move(kind), line++);
  }
  return config;
}

Config SpanRegistryWith(std::vector<std::string> names) {
  Config config;
  config.have_spans_registry = true;
  size_t line = 1;
  for (std::string& name : names) {
    config.registered_spans.emplace(std::move(name), line++);
  }
  return config;
}

std::vector<std::string> RuleIds(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const Finding& f : findings) ids.push_back(f.rule);
  return ids;
}

struct FixtureCase {
  const char* fixture;        // file under tests/lint_fixtures/
  const char* pretend_path;   // repo-relative path the rule scoping sees
  std::vector<std::string> expect_rules;  // in (line, rule) order
};

class FixtureTest : public ::testing::TestWithParam<FixtureCase> {};

// The lock registry every fixture case is checked under: three ranks in
// declaration (= allowed acquisition) order, with repo-unique member names
// bound the way the driver's CollectLockBindings pass would.
void AddLockRegistry(Config* config) {
  config->have_lock_registry = true;
  config->registered_locks = {
      {"serve_queue", 1}, {"serve_session", 2}, {"obs_trace_shard", 3}};
  config->lock_order = {"serve_queue", "serve_session", "obs_trace_shard"};
  config->lock_bindings = {{"queue_mu_", "serve_queue"},
                           {"session_mu", "serve_session"},
                           {"shard_mu", "obs_trace_shard"}};
}

TEST_P(FixtureTest, FiresExactlyTheExpectedRules) {
  const FixtureCase& c = GetParam();
  Config config = RegistryWith({"episode", "predict"});
  config.have_spans_registry = true;
  config.registered_spans = {{"train", 1}, {"predict", 2}};
  AddLockRegistry(&config);
  const std::vector<Finding> findings =
      CheckFile(c.pretend_path, ReadFixture(c.fixture), config);
  EXPECT_EQ(RuleIds(findings), c.expect_rules)
      << "fixture " << c.fixture << " as " << c.pretend_path;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, c.pretend_path);
    EXPECT_GT(f.line, 0u);
    EXPECT_EQ(RuleCatalog().count(f.rule), 1u)
        << "finding uses unknown rule-id " << f.rule;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, FixtureTest,
    ::testing::Values(
        // Determinism: rand/srand are banned in every scanned directory.
        FixtureCase{"banned_rand.bad.cc", "tests/fake/roll.cc",
                    {"banned-rand", "banned-rand"}},
        FixtureCase{"banned_rand.good.cc", "src/fake/roll.cc", {}},
        // IO bans apply under src/ only.
        FixtureCase{"banned_io.bad.cc", "src/fake/report.cc",
                    {"banned-io", "banned-io"}},
        FixtureCase{"banned_io.bad.cc", "tests/fake/report.cc", {}},
        FixtureCase{"banned_io.good.cc", "src/fake/report.cc", {}},
        // new/delete hygiene, with a suppressed singleton in the good file.
        FixtureCase{"naked_new.bad.cc", "src/fake/make.cc",
                    {"naked-new", "naked-delete", "naked-new"}},
        FixtureCase{"naked_new.good.cc", "src/fake/make.cc", {}},
        // Wall-clock reads: banned in domain code, allowed for the owners.
        FixtureCase{"wall_clock.bad.cc", "src/ts/stamp.cc",
                    {"wall-clock", "wall-clock"}},
        FixtureCase{"wall_clock.bad.cc", "src/common/stamp.cc", {}},
        FixtureCase{"wall_clock.bad.cc", "src/obs/stamp.cc", {}},
        FixtureCase{"wall_clock.good.cc", "src/ts/stamp.cc", {}},
        // Include hygiene.
        FixtureCase{"include_bits.bad.cc", "src/fake/answer.cc",
                    {"include-bits"}},
        FixtureCase{"include_self_first.bad.cc",
                    "src/fake/include_self_first.cc",
                    {"include-self-first"}},
        FixtureCase{"include_self_first.good.cc",
                    "src/fake/include_self_first.cc",
                    {}},
        // Header guards: pragma once plus a missing canonical guard.
        FixtureCase{"header_guard.bad.h", "src/fake/guarded.h",
                    {"header-guard", "header-guard"}},
        FixtureCase{"header_guard.good.h", "src/fake/guarded.h", {}},
        // Telemetry event kinds must be registered (src/ only).
        FixtureCase{"event_registry.bad.cc", "src/fake/train.cc",
                    {"event-registry"}},
        FixtureCase{"event_registry.bad.cc", "tests/fake/train.cc", {}},
        FixtureCase{"event_registry.good.cc", "src/fake/train.cc", {}},
        // Trace span names must be registered (src/ and tools/; tests and
        // bench stay exempt so ad-hoc spans remain usable there).
        FixtureCase{"span_registry.bad.cc", "src/fake/train.cc",
                    {"span-registry"}},
        FixtureCase{"span_registry.bad.cc", "tools/fake/bench.cc",
                    {"span-registry"}},
        FixtureCase{"span_registry.bad.cc", "tests/fake/train.cc", {}},
        FixtureCase{"span_registry.bad.cc", "bench/fake/train.cc", {}},
        FixtureCase{"span_registry.good.cc", "src/fake/train.cc", {}},
        FixtureCase{"span_registry.good.cc", "tools/fake/bench.cc", {}},
        // Materialized-transpose product chains (src/ only; tests and bench
        // use the chain as the reference for the fused kernels).
        FixtureCase{"transpose_matmul.bad.cc", "src/fake/solver.cc",
                    {"transpose-matmul", "transpose-matmul"}},
        FixtureCase{"transpose_matmul.bad.cc", "tests/fake/solver.cc", {}},
        FixtureCase{"transpose_matmul.bad.cc", "bench/fake/solver.cc", {}},
        FixtureCase{"transpose_matmul.good.cc", "src/fake/solver.cc", {}},
        // Task markers need an owner/issue tag.
        FixtureCase{"todo_tag.bad.cc", "src/fake/pending.cc",
                    {"todo-tag", "todo-tag"}},
        FixtureCase{"todo_tag.good.cc", "src/fake/pending.cc", {}},
        // Suppressions that suppress nothing are findings themselves.
        FixtureCase{"stale_nolint.bad.cc", "src/fake/clean.cc",
                    {"stale-nolint", "stale-nolint", "stale-nolint"}},
        FixtureCase{"stale_nolint.good.cc", "tests/fake/roll.cc", {}},
        // Guarded-by: container members of mutex-bearing classes need an
        // annotation (enforced in the concurrent subsystems only), and the
        // annotation must name a visible mutex (checked anywhere in src/).
        FixtureCase{"guarded_by.bad.cc", "src/serve/table.cc",
                    {"guarded-by", "guarded-by"}},
        FixtureCase{"guarded_by.bad.cc", "src/nn/table.cc", {"guarded-by"}},
        FixtureCase{"guarded_by.bad.cc", "tests/fake/table.cc", {}},
        FixtureCase{"guarded_by.good.cc", "src/serve/table.cc", {}},
        // EADRL_REQUIRES(mu) methods must not re-lock mu in their body.
        FixtureCase{"requires_self_lock.bad.cc", "src/par/counter.cc",
                    {"requires-self-lock", "requires-self-lock"}},
        FixtureCase{"requires_self_lock.bad.cc", "tests/fake/counter.cc", {}},
        FixtureCase{"requires_self_lock.good.cc", "src/par/counter.cc", {}},
        // Scoped acquisitions of ranked mutexes must follow the registry's
        // declaration order.
        FixtureCase{"lock_order.bad.cc", "src/serve/order.cc",
                    {"lock-order", "lock-order"}},
        FixtureCase{"lock_order.bad.cc", "tests/fake/order.cc", {}},
        FixtureCase{"lock_order.good.cc", "src/serve/order.cc", {}}));

TEST(LintTest, BannedRandReportsAccurateLines) {
  const std::vector<Finding> findings = CheckFile(
      "tests/fake/roll.cc", ReadFixture("banned_rand.bad.cc"), Config{});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 4u);  // std::srand(42);
  EXPECT_EQ(findings[1].line, 5u);  // return std::rand() % 6;
}

TEST(LintTest, SuppressedFindingDoesNotCountAsStale) {
  const std::vector<Finding> findings = CheckFile(
      "src/fake/roll.cc", ReadFixture("stale_nolint.good.cc"), Config{});
  EXPECT_TRUE(findings.empty());
}

TEST(LintTest, EmittedEventsSeesMultiLineCalls) {
  const std::set<std::string> kinds =
      EmittedEvents(ReadFixture("event_registry.good.cc"));
  EXPECT_EQ(kinds, std::set<std::string>{"episode"});
}

TEST(LintTest, ParseEventsDefReadsNamesAndFlagsDuplicates) {
  const std::string registry =
      "EADRL_EVENT(episode, \"one episode\")\n"
      "EADRL_EVENT(predict, \"one prediction\")\n"
      "EADRL_EVENT(episode, \"duplicate\")\n";
  std::vector<Finding> findings;
  const std::map<std::string, size_t> events =
      ParseEventsDef("src/obs/events.def", registry, &findings);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(events.at("episode"), 1u);
  EXPECT_EQ(events.at("predict"), 2u);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "event-registry");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintTest, RegistryStalenessFlagsUnusedEntries) {
  const Config config = RegistryWith({"episode", "predict"});
  const std::vector<Finding> findings =
      CheckRegistryStaleness("src/obs/events.def", config, {"episode"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "event-registry-stale");
  EXPECT_NE(findings[0].message.find("predict"), std::string::npos);
}

TEST(LintTest, ParseSpansDefReadsNamesAndFlagsDuplicates) {
  const std::string registry =
      "EADRL_SPAN(train, \"one training run\")\n"
      "EADRL_SPAN(predict, \"one prediction\")\n"
      "EADRL_SPAN(train, \"duplicate\")\n";
  std::vector<Finding> findings;
  const std::map<std::string, size_t> spans =
      ParseSpansDef("src/obs/spans.def", registry, &findings);
  EXPECT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans.at("train"), 1u);
  EXPECT_EQ(spans.at("predict"), 2u);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "span-registry");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintTest, UsedSpansSeesNamedAndTemporaryForms) {
  const std::set<std::string> names =
      UsedSpans(ReadFixture("span_registry.good.cc"));
  EXPECT_EQ(names, (std::set<std::string>{"train", "predict"}));
}

TEST(LintTest, SpanRegistryStalenessFlagsUnusedEntries) {
  const Config config = SpanRegistryWith({"train", "predict"});
  const std::vector<Finding> findings =
      CheckSpanRegistryStaleness("src/obs/spans.def", config, {"train"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "span-registry-stale");
  EXPECT_NE(findings[0].message.find("predict"), std::string::npos);
}

TEST(LintTest, ParseLockOrderDefReadsNamesOrderAndFlagsDuplicates) {
  const std::string registry =
      "EADRL_LOCK(serve_queue, \"batching queue\")\n"
      "EADRL_LOCK(serve_session, \"per-session state\")\n"
      "EADRL_LOCK(serve_queue, \"duplicate\")\n";
  std::vector<Finding> findings;
  std::vector<std::string> order;
  const std::map<std::string, size_t> locks =
      ParseLockOrderDef("src/chk/lock_order.def", registry, &findings, &order);
  EXPECT_EQ(locks.size(), 2u);
  EXPECT_EQ(locks.at("serve_queue"), 1u);
  EXPECT_EQ(locks.at("serve_session"), 2u);
  // File order is the allowed acquisition order; duplicates do not reorder.
  EXPECT_EQ(order, (std::vector<std::string>{"serve_queue", "serve_session"}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-registry");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintTest, CollectLockBindingsSeesBothBindingForms) {
  const std::string contents =
      "class Q {\n"
      "  chk::OrderedMutex queue_mu_{EADRL_LOCK_RANK(serve_queue),\n"
      "                              \"serve::Q::queue_mu_\"};\n"
      "  std::mutex scratch_mu_ EADRL_LOCK_ORDERED(serve_session);\n"
      "};\n";
  const std::vector<LockBindingSite> sites = CollectLockBindings(contents);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].name, "queue_mu_");
  EXPECT_EQ(sites[0].rank, "serve_queue");
  EXPECT_EQ(sites[0].line, 2u);
  EXPECT_EQ(sites[1].name, "scratch_mu_");
  EXPECT_EQ(sites[1].rank, "serve_session");
  EXPECT_EQ(sites[1].line, 4u);
}

TEST(LintTest, UnknownRankNameIsALockRegistryFinding) {
  Config config;
  AddLockRegistry(&config);
  const std::string contents =
      "chk::OrderedMutex mu{EADRL_LOCK_RANK(not_a_rank), \"x\"};\n";
  const std::vector<Finding> findings =
      CheckFile("src/serve/x.cc", contents, config);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-registry");
  EXPECT_NE(findings[0].message.find("not_a_rank"), std::string::npos);
}

TEST(LintTest, LockRegistryStalenessFlagsUnboundRanks) {
  Config config;
  AddLockRegistry(&config);
  const std::vector<Finding> findings = CheckLockRegistryStaleness(
      "src/chk/lock_order.def", config, {"serve_queue", "obs_trace_shard"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-registry-stale");
  EXPECT_NE(findings[0].message.find("serve_session"), std::string::npos);
}

TEST(LintTest, LockOrderMessageNamesBothSitesAndTheRegistry) {
  Config config;
  AddLockRegistry(&config);
  const std::string contents =
      "void F(S& s) {\n"
      "  std::lock_guard<chk::OrderedMutex> a(s.session_mu);\n"
      "  std::lock_guard<chk::OrderedMutex> b(s.queue_mu_);\n"
      "}\n";
  const std::vector<Finding> findings =
      CheckFile("src/serve/x.cc", contents, config);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("queue_mu_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("session_mu"), std::string::npos);
  EXPECT_NE(findings[0].message.find("lock_order.def"), std::string::npos);
}

TEST(LintTest, FormatFindingJsonEscapes) {
  const Finding f{"src/a.cc", 7, "guarded-by", "needs \"quotes\"\tand tabs"};
  EXPECT_EQ(FormatFindingJson(f),
            "{\"file\":\"src/a.cc\",\"line\":7,\"rule\":\"guarded-by\","
            "\"message\":\"needs \\\"quotes\\\"\\tand tabs\"}");
}

TEST(LintTest, FormatFindingMatchesGateGrammar) {
  const Finding f{"src/nn/dense.cc", 12, "banned-io", "std::cout in src/"};
  EXPECT_EQ(FormatFinding(f), "src/nn/dense.cc:12: banned-io: std::cout in src/");
}

TEST(LintTest, CatalogCoversEveryRuleTheTestsUse) {
  for (const char* id :
       {"banned-rand", "banned-io", "naked-new", "naked-delete", "wall-clock",
        "include-bits", "include-self-first", "header-guard", "event-registry",
        "event-registry-stale", "span-registry", "span-registry-stale",
        "todo-tag", "stale-nolint", "guarded-by", "requires-self-lock",
        "lock-order", "lock-registry", "lock-registry-stale"}) {
    EXPECT_EQ(RuleCatalog().count(id), 1u) << id;
  }
}

}  // namespace
}  // namespace eadrl::lint
