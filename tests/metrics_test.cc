#include "ts/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace eadrl::ts {
namespace {

TEST(MetricsTest, RmseZeroForPerfectPrediction) {
  math::Vec y{1, 2, 3};
  EXPECT_DOUBLE_EQ(Rmse(y, y), 0.0);
}

TEST(MetricsTest, RmseKnownValue) {
  math::Vec a{0, 0, 0, 0};
  math::Vec p{1, -1, 1, -1};
  EXPECT_DOUBLE_EQ(Rmse(a, p), 1.0);
}

TEST(MetricsTest, NrmseNormalizesByRange) {
  math::Vec a{0, 10};
  math::Vec p{1, 9};
  // RMSE = 1, range = 10.
  EXPECT_NEAR(Nrmse(a, p), 0.1, 1e-12);
}

TEST(MetricsTest, NrmseConstantActualFallsBackToRmse) {
  math::Vec a{5, 5};
  math::Vec p{6, 4};
  EXPECT_DOUBLE_EQ(Nrmse(a, p), Rmse(a, p));
}

TEST(MetricsTest, MaeKnownValue) {
  math::Vec a{1, 2, 3};
  math::Vec p{2, 2, 1};
  EXPECT_DOUBLE_EQ(Mae(a, p), 1.0);
}

TEST(MetricsTest, SmapeBounds) {
  math::Vec a{1, 1};
  math::Vec p{1, 1};
  EXPECT_DOUBLE_EQ(Smape(a, p), 0.0);
  // Opposite signs give the maximum of 2.
  EXPECT_NEAR(Smape({1.0}, {-1.0}), 2.0, 1e-12);
}

TEST(MetricsTest, MaseOneForNaivePerformance) {
  // If prediction error equals the naive in-sample MAE, MASE = 1.
  math::Vec train{0, 1, 2, 3};  // naive MAE = 1.
  math::Vec actual{10, 10};
  math::Vec pred{11, 9};
  EXPECT_NEAR(Mase(train, actual, pred), 1.0, 1e-12);
}

TEST(MetricsTest, MaseBelowOneBeatsNaive) {
  math::Vec train{0, 1, 2, 3};
  math::Vec actual{10, 10};
  math::Vec pred{10.1, 9.9};
  EXPECT_LT(Mase(train, actual, pred), 1.0);
}

}  // namespace
}  // namespace eadrl::ts
