#include "common/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace eadrl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
    EXPECT_DOUBLE_EQ(a.Normal(), b.Normal());
    EXPECT_EQ(a.Int(0, 1000), b.Int(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Int(0, 1000000) == b.Int(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, IntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, NormalHasRoughlyCorrectMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    auto idx = rng.SampleWithoutReplacement(20, 10);
    std::set<size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t i : idx) EXPECT_LT(i, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(5);
  auto idx = rng.SampleWithoutReplacement(8, 8);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(42);
  Rng fork1 = a.Fork();
  Rng b(42);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fork1.Uniform(), fork2.Uniform());
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace eadrl
