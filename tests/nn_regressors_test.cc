// Learning tests for the neural regressor family used by the pool: every
// variant must fit a simple autoregressive pattern clearly better than
// predicting the mean.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/nn_regressors.h"

namespace eadrl::models {
namespace {

// Supervised data from a noiseless sine: x = 5 lags, y = next value.
void MakeSineData(math::Matrix* x, math::Vec* y) {
  const size_t n = 250, k = 5;
  math::Vec series(n + k);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0);
  }
  *x = math::Matrix(n, k);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) (*x)(i, j) = series[i + j];
    (*y)[i] = series[i + k];
  }
}

double Mse(Regressor& model, const math::Matrix& x, const math::Vec& y) {
  double s = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    double d = model.Predict(x.Row(i)) - y[i];
    s += d * d;
  }
  return s / static_cast<double>(x.rows());
}

class NnRegressorLearning : public ::testing::TestWithParam<int> {
 public:
  static std::unique_ptr<Regressor> Make(int which) {
    NnTrainParams train;
    train.epochs = 30;
    train.seed = 11;
    switch (which) {
      case 0:
        return std::make_unique<MlpRegressor>(std::vector<size_t>{12},
                                              train);
      case 1:
        return std::make_unique<LstmRegressor>(12, train);
      case 2:
        return std::make_unique<BiLstmRegressor>(8, train);
      case 3:
        return std::make_unique<CnnLstmRegressor>(4, 2, 8, train);
      case 4:
        return std::make_unique<ConvLstmRegressor>(2, 8, train);
      default:
        return std::make_unique<StackedLstmRegressor>(8, train);
    }
  }
};

TEST_P(NnRegressorLearning, FitsSinePatternWellBelowVariance) {
  math::Matrix x;
  math::Vec y;
  MakeSineData(&x, &y);
  auto model = Make(GetParam());
  ASSERT_TRUE(model->Fit(x, y).ok());
  // Variance of a sine is 0.5; a trained net should be far below it.
  EXPECT_LT(Mse(*model, x, y), 0.05);
}

TEST_P(NnRegressorLearning, DeterministicForSeed) {
  math::Matrix x;
  math::Vec y;
  MakeSineData(&x, &y);
  auto a = Make(GetParam());
  auto b = Make(GetParam());
  ASSERT_TRUE(a->Fit(x, y).ok());
  ASSERT_TRUE(b->Fit(x, y).ok());
  math::Vec q{0.1, 0.4, 0.8, 0.9, 0.5};
  EXPECT_DOUBLE_EQ(a->Predict(q), b->Predict(q));
}

TEST_P(NnRegressorLearning, RejectsEmptyData) {
  auto model = Make(GetParam());
  EXPECT_FALSE(model->Fit(math::Matrix(), {}).ok());
}

const char* const kVariantNames[] = {"Mlp",     "Lstm",     "BiLstm",
                                     "CnnLstm", "ConvLstm", "StackedLstm"};

INSTANTIATE_TEST_SUITE_P(AllVariants, NnRegressorLearning,
                         ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return std::string(kVariantNames[param_info.param]);
                         });

TEST(CnnLstmTest, RejectsWindowShorterThanKernel) {
  NnTrainParams train;
  CnnLstmRegressor model(4, 7, 8, train);
  math::Matrix x(10, 5);  // window 5 < kernel 7.
  math::Vec y(10, 0.0);
  EXPECT_FALSE(model.Fit(x, y).ok());
}

TEST(ConvLstmTest, RejectsWindowShorterThanPatch) {
  NnTrainParams train;
  ConvLstmRegressor model(7, 8, train);
  math::Matrix x(10, 5);
  math::Vec y(10, 0.0);
  EXPECT_FALSE(model.Fit(x, y).ok());
}

}  // namespace
}  // namespace eadrl::models
