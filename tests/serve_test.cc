// Functional tests for the multi-tenant serving layer: session lifecycle,
// admission control / shedding, LRU + TTL eviction, cross-tenant batching
// stats, the drift/window reset contract across session recreation, and the
// per-session serialization guard. Services here run manual_drain so every
// wave is pumped deterministically on the test thread.
#define EADRL_CHK_FORCE_ON 1

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chk/chk.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "math/vec.h"
#include "serve/service.h"
#include "ts/datasets.h"
#include "ts/scaler.h"

namespace eadrl {
namespace {

struct Trained {
  exp::PoolRun pool;
  core::EadrlConfig config;
  std::string policy_path;
};

/// Trains one tiny policy ONCE per test binary and saves it; every test
/// rebuilds a combiner from the saved file (cheap) instead of retraining.
const Trained& GetTrained() {
  static Trained* trained = [] {
    auto* t = new Trained;
    auto series = ts::MakeDataset(2, 42, 160);
    EXPECT_TRUE(series.ok());
    exp::ExperimentOptions opt;
    opt.seed = 42;
    opt.pool.fast_mode = true;
    opt.pool.nn_epochs = 2;
    opt.eadrl.max_episodes = 2;
    opt.eadrl.restarts = 1;
    t->pool = exp::PreparePool(*series, opt);
    t->config = opt.eadrl;
    core::EadrlCombiner combiner(opt.eadrl);
    EXPECT_TRUE(combiner.Initialize(t->pool.val_preds, t->pool.val_actuals).ok());
    t->policy_path = ::testing::TempDir() + "serve_test_policy.eadrl";
    EXPECT_TRUE(combiner.SavePolicy(t->policy_path).ok());
    return t;
  }();
  return *trained;
}

std::unique_ptr<core::EadrlCombiner> NewCombiner() {
  auto combiner = std::make_unique<core::EadrlCombiner>(GetTrained().config);
  EXPECT_TRUE(combiner->LoadPolicy(GetTrained().policy_path).ok());
  return combiner;
}

serve::ServeConfig ManualConfig() {
  serve::ServeConfig config;
  config.manual_drain = true;
  return config;
}

math::Vec Preds(size_t step) {
  const auto& pool = GetTrained().pool;
  return pool.test_preds.Row(step % pool.test_preds.rows());
}

double Actual(size_t step) {
  const auto& pool = GetTrained().pool;
  return pool.test_actuals[step % pool.test_actuals.size()];
}

TEST(ForecastServiceTest, PredictObserveFlow) {
  serve::ForecastService service(ManualConfig());
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());

  StatusOr<double> out = service.Predict("a", Preds(0));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isfinite(*out));
  ASSERT_TRUE(service.ObserveActual("a", Actual(0)).ok());

  StatusOr<serve::SessionInfo> info = service.GetSessionInfo("a");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->predicts, 1u);
  EXPECT_EQ(info->observes, 1u);
  EXPECT_TRUE(info->has_last_prediction);
  EXPECT_EQ(info->drift_observations, 1u);

  const serve::ServeStats stats = service.Stats();
  EXPECT_EQ(stats.predicts, 1u);
  EXPECT_EQ(stats.observes, 1u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.sessions, 1u);
}

TEST(ForecastServiceTest, ErrorCodes) {
  serve::ForecastService service(ManualConfig());
  const size_t policy_id = service.RegisterPolicy(NewCombiner());

  EXPECT_EQ(service.CreateSession("a", policy_id + 7).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());
  EXPECT_EQ(service.CreateSession("a", policy_id).code(),
            StatusCode::kFailedPrecondition);

  EXPECT_EQ(service.Predict("ghost", Preds(0)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.ObserveActual("ghost", 1.0).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.GetSessionInfo("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.EvictSession("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.ResetSession("ghost").code(), StatusCode::kNotFound);

  ASSERT_TRUE(service.EvictSession("a").ok());
  EXPECT_EQ(service.EvictSession("a").code(), StatusCode::kNotFound);
}

TEST(ForecastServiceTest, QueueBoundShedsWithTypedStatus) {
  serve::ServeConfig config = ManualConfig();
  config.max_queue = 3;
  serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());

  std::atomic<size_t> completed{0};
  auto done = [&completed](StatusOr<double> result) {
    EXPECT_TRUE(result.ok());
    ++completed;
  };
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.PredictAsync("a", Preds(i), done).ok());
  }
  Status shed = service.PredictAsync("a", Preds(3), done);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);

  EXPECT_TRUE(service.DrainOnce());
  EXPECT_EQ(completed.load(), 3u);
  const serve::ServeStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.inflight, 0u);
  // The shed request never reached a wave: only 3 predicts completed.
  EXPECT_EQ(stats.predicts, 3u);
}

TEST(ForecastServiceTest, InflightBoundShedsWithTypedStatus) {
  serve::ServeConfig config = ManualConfig();
  config.max_inflight = 2;
  serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());

  auto done = [](StatusOr<double> result) { EXPECT_TRUE(result.ok()); };
  ASSERT_TRUE(service.PredictAsync("a", Preds(0), done).ok());
  ASSERT_TRUE(service.PredictAsync("a", Preds(1), done).ok());
  EXPECT_EQ(service.PredictAsync("a", Preds(2), done).code(),
            StatusCode::kResourceExhausted);
  // Completion frees the budget.
  while (service.DrainOnce()) {
  }
  ASSERT_TRUE(service.PredictAsync("a", Preds(2), done).ok());
  while (service.DrainOnce()) {
  }
  EXPECT_EQ(service.Stats().inflight, 0u);
}

TEST(ForecastServiceTest, WavesBatchAcrossTenantsButNotWithinOne) {
  serve::ForecastService service(ManualConfig());
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  for (const char* tenant : {"a", "b", "c"}) {
    ASSERT_TRUE(service.CreateSession(tenant, policy_id).ok());
  }
  // Two queued requests per tenant: one drain must process them as two
  // waves (per-session FIFO, one request per session per wave), each wave
  // one 3-row batched actor pass.
  std::vector<double> outputs;
  auto done = [&outputs](StatusOr<double> result) {
    ASSERT_TRUE(result.ok());
    outputs.push_back(*result);
  };
  for (size_t step = 0; step < 2; ++step) {
    for (const char* tenant : {"a", "b", "c"}) {
      ASSERT_TRUE(service.PredictAsync(tenant, Preds(step), done).ok());
    }
  }
  EXPECT_TRUE(service.DrainOnce());
  EXPECT_EQ(outputs.size(), 6u);
  const serve::ServeStats stats = service.Stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.act_batches, 2u);
  EXPECT_EQ(stats.act_batch_rows, 6u);
  EXPECT_DOUBLE_EQ(stats.MeanActBatchRows(), 3.0);
}

TEST(ForecastServiceTest, LruEvictionAtCapacity) {
  serve::ServeConfig config = ManualConfig();
  config.shards = 1;
  config.max_sessions = 2;
  serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());
  ASSERT_TRUE(service.CreateSession("b", policy_id).ok());
  // Touch "a" so "b" is the LRU victim.
  ASSERT_TRUE(service.GetSessionInfo("a").ok());
  ASSERT_TRUE(service.CreateSession("c", policy_id).ok());

  EXPECT_TRUE(service.GetSessionInfo("a").ok());
  EXPECT_EQ(service.GetSessionInfo("b").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(service.GetSessionInfo("c").ok());
  const serve::ServeStats stats = service.Stats();
  EXPECT_EQ(stats.evictions_lru, 1u);
  EXPECT_EQ(stats.sessions, 2u);
}

TEST(ForecastServiceTest, TtlEvictionSweepsIdleSessions) {
  serve::ServeConfig config = ManualConfig();
  config.session_ttl_seconds = 0.02;
  serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("idle", policy_id).ok());
  ASSERT_TRUE(service.CreateSession("hot", policy_id).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Touch "hot" inside the TTL window; "idle" ages out.
  ASSERT_TRUE(service.GetSessionInfo("hot").ok());
  EXPECT_EQ(service.EvictIdleSessions(), 1u);
  EXPECT_EQ(service.GetSessionInfo("idle").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(service.GetSessionInfo("hot").ok());
  EXPECT_EQ(service.Stats().evictions_ttl, 1u);
}

/// The session-recreation reset contract: NO drift-detector or window state
/// may survive eviction + recreation (or ResetSession). Regression test for
/// the serving layer's statefulness: a recreated session must be
/// indistinguishable from a brand-new one, down to its first prediction.
TEST(ForecastServiceTest, DriftAndWindowStateResetOnRecreation) {
  serve::ForecastService service(ManualConfig());
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());

  StatusOr<double> first = service.Predict("a", Preds(0));
  ASSERT_TRUE(first.ok());
  for (size_t step = 1; step < 6; ++step) {
    ASSERT_TRUE(service.Predict("a", Preds(step)).ok());
    // Wildly wrong actuals pump the drift detector's state.
    ASSERT_TRUE(service.ObserveActual("a", Actual(step) + 100.0).ok());
  }
  StatusOr<serve::SessionInfo> dirty = service.GetSessionInfo("a");
  ASSERT_TRUE(dirty.ok());
  const uint64_t first_generation = dirty->generation;
  EXPECT_EQ(dirty->predicts, 6u);
  EXPECT_GT(dirty->drift_observations, 0u);
  EXPECT_TRUE(dirty->has_last_prediction);

  // Evict + recreate.
  ASSERT_TRUE(service.EvictSession("a").ok());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());
  StatusOr<serve::SessionInfo> fresh = service.GetSessionInfo("a");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->generation, first_generation);
  EXPECT_EQ(fresh->predicts, 0u);
  EXPECT_EQ(fresh->observes, 0u);
  EXPECT_EQ(fresh->drift_events, 0u);
  EXPECT_EQ(fresh->drift_observations, 0u);
  EXPECT_DOUBLE_EQ(fresh->drift_cumulative, 0.0);
  EXPECT_FALSE(fresh->has_last_prediction);
  // The strongest leak check: with the window re-cloned from the policy
  // snapshot, the recreated session's first prediction is bit-identical to
  // the original session's first prediction.
  StatusOr<double> refirst = service.Predict("a", Preds(0));
  ASSERT_TRUE(refirst.ok());
  EXPECT_EQ(*refirst, *first);

  // ResetSession gives the same contract without dropping residency.
  for (size_t step = 1; step < 4; ++step) {
    ASSERT_TRUE(service.Predict("a", Preds(step)).ok());
    ASSERT_TRUE(service.ObserveActual("a", Actual(step) - 100.0).ok());
  }
  ASSERT_TRUE(service.ResetSession("a").ok());
  StatusOr<serve::SessionInfo> reset = service.GetSessionInfo("a");
  ASSERT_TRUE(reset.ok());
  EXPECT_EQ(reset->predicts, 0u);
  EXPECT_EQ(reset->drift_observations, 0u);
  EXPECT_FALSE(reset->has_last_prediction);
  StatusOr<double> after_reset = service.Predict("a", Preds(0));
  ASSERT_TRUE(after_reset.ok());
  EXPECT_EQ(*after_reset, *first);
}

TEST(ForecastServiceTest, ScalerMapsTenantUnitsAffinely) {
  serve::ForecastService service(ManualConfig());
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  const ts::StandardScaler scaler =
      ts::StandardScaler::FromMoments(250.0, 12.5);
  ASSERT_TRUE(service.CreateSession("raw", policy_id).ok());
  ASSERT_TRUE(service.CreateSession("scaled", policy_id, &scaler).ok());

  for (size_t step = 0; step < 4; ++step) {
    StatusOr<double> raw = service.Predict("raw", Preds(step));
    StatusOr<double> mapped =
        service.Predict("scaled", scaler.Inverse(Preds(step)));
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(mapped.ok());
    // Transform(Inverse(x)) == x exactly for this affine pair, so the two
    // sessions see identical policy-unit inputs and the scaled session's
    // output is exactly the inverse-mapped raw output.
    EXPECT_DOUBLE_EQ(*mapped, scaler.Inverse(*raw));
  }
}

TEST(ForecastServiceTest, ObserveBeforeAnyPredictIsInert) {
  serve::ForecastService service(ManualConfig());
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());
  ASSERT_TRUE(service.ObserveActual("a", 123.0).ok());
  StatusOr<serve::SessionInfo> info = service.GetSessionInfo("a");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->observes, 1u);
  // No prediction to score against: the drift detector saw nothing.
  EXPECT_EQ(info->drift_observations, 0u);
}

// ---------------------------------------------------------------------------
// Live observability wiring (PR 10): windowed stats, queue-delay exposure,
// SLO tracking and the bounded per-tenant drill-down.

std::atomic<uint64_t> g_fake_now_ns{0};

uint64_t FakeNow() { return g_fake_now_ns.load(std::memory_order_relaxed); }

void SetFakeNowSeconds(double seconds) {
  g_fake_now_ns.store(static_cast<uint64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
}

serve::ServeConfig FakeClockConfig() {
  serve::ServeConfig config = ManualConfig();
  config.windowed_stats = true;
  config.window.buckets = 4;
  config.window.tick_seconds = 1.0;
  config.window.now_ns = &FakeNow;
  return config;
}

TEST(ForecastServiceObsTest, WindowedStatsAndQueueDelayExposed) {
  SetFakeNowSeconds(1000.0);
  serve::ForecastService service(FakeClockConfig());
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());

  for (size_t step = 0; step < 3; ++step) {
    ASSERT_TRUE(service.Predict("a", Preds(step)).ok());
  }
  serve::ServeStats stats = service.Stats();
  EXPECT_DOUBLE_EQ(stats.window_seconds, 1.0);  // one resident sub-window.
  EXPECT_DOUBLE_EQ(stats.window_predict_qps, 3.0);
  EXPECT_DOUBLE_EQ(stats.window_shed_rate, 0.0);
  EXPECT_GT(stats.window_predict_p99_s, 0.0);
  EXPECT_GE(stats.window_predict_p99_s, stats.window_predict_p50_s);
  // Admission-to-drain residence was recorded for every drained request —
  // the ROADMAP "SLO-aware admission" signal.
  EXPECT_EQ(stats.queue_delay_count, 3u);
  EXPECT_GT(stats.queue_delay_mean_s, 0.0);
  EXPECT_GE(stats.queue_delay_max_s, stats.queue_delay_p99_s * (1.0 - 1e-9));

  const obs::WindowedHistogramSnapshot latency =
      service.PredictLatencyWindowSnapshot();
  EXPECT_EQ(latency.values.count, 3u);
  EXPECT_EQ(service.QueueDelaySnapshot().values.count, 3u);

  // The window slides past the burst: live rates drain to zero while the
  // cumulative counters keep the history.
  SetFakeNowSeconds(1100.0);
  stats = service.Stats();
  EXPECT_DOUBLE_EQ(stats.window_predict_qps, 0.0);
  EXPECT_EQ(stats.queue_delay_count, 0u);
  EXPECT_EQ(stats.predicts, 3u);
}

TEST(ForecastServiceObsTest, ShedRateLandsInTheWindow) {
  SetFakeNowSeconds(0.0);
  serve::ServeConfig config = FakeClockConfig();
  config.max_queue = 1;
  serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());

  auto done = [](StatusOr<double> result) { EXPECT_TRUE(result.ok()); };
  ASSERT_TRUE(service.PredictAsync("a", Preds(0), done).ok());
  EXPECT_EQ(service.PredictAsync("a", Preds(1), done).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(service.PredictAsync("a", Preds(2), done).code(),
            StatusCode::kResourceExhausted);
  while (service.DrainOnce()) {
  }
  const serve::ServeStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_DOUBLE_EQ(stats.window_shed_rate, 2.0);
}

TEST(ForecastServiceObsTest, SloTracksLatencyAndAvailability) {
  SetFakeNowSeconds(0.0);
  serve::ServeConfig config = FakeClockConfig();
  config.max_queue = 2;
  config.slo.enabled = true;
  // Impossible threshold: every predict is an SLO miss, so the drained
  // batches must drive the latency objective into breach.
  config.slo.latency_threshold_seconds = 1e-9;
  config.slo.latency_target = 0.9;
  serve::ForecastService service(config);
  ASSERT_NE(service.slo_tracker(), nullptr);
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  ASSERT_TRUE(service.CreateSession("a", policy_id).ok());

  auto done = [](StatusOr<double> result) { EXPECT_TRUE(result.ok()); };
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(service.PredictAsync("a", Preds(round), done).ok());
    (void)service.PredictAsync("a", Preds(round), done);  // may shed.
    while (service.DrainOnce()) {
    }
  }
  const obs::SloReport report = service.slo_tracker()->Report();
  ASSERT_EQ(report.objectives.size(), 2u);
  const obs::SloObjectiveReport& latency =
      report.objectives[serve::ForecastService::kSloLatencyObjective];
  EXPECT_GT(latency.bad, 0u);
  EXPECT_EQ(latency.good, 0u);
  EXPECT_GE(report.TotalBreaches(), 1u);
  const obs::SloObjectiveReport& availability =
      report.objectives[serve::ForecastService::kSloAvailabilityObjective];
  // Every admitted request recorded a good availability outcome; sheds (if
  // any raced in) recorded bad ones. Totals must cover all submissions.
  EXPECT_GT(availability.good, 0u);
}

TEST(ForecastServiceObsTest, SloDisabledByDefault) {
  serve::ForecastService service(ManualConfig());
  EXPECT_EQ(service.slo_tracker(), nullptr);
}

TEST(ForecastServiceObsTest, TenantDrilldownBoundedUnderChurn) {
  SetFakeNowSeconds(0.0);
  serve::ServeConfig config = FakeClockConfig();
  config.tenant_drilldown = 4;
  config.policy_drilldown = 2;
  serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(NewCombiner());
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(
        service.CreateSession("tenant-" + std::to_string(t), policy_id).ok());
  }
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(
        service.Predict("tenant-" + std::to_string(t), Preds(t)).ok());
  }
  const obs::LabeledWindowedFamily* family = service.tenant_drilldown();
  ASSERT_NE(family, nullptr);
  // All 10 tenants predicted inside one (fake-clock) tick: the guard must
  // keep 4 fresh slots and overflow the rest — never grow past the cap.
  EXPECT_EQ(family->TrackedLabels(), 4u);
  EXPECT_EQ(family->Overflow(), 6u);
  // The per-policy drill-down labels by registration id.
  ASSERT_NE(service.policy_drilldown(), nullptr);
  const obs::LabeledWindowedFamilySnapshot policies =
      service.policy_drilldown()->Snapshot();
  ASSERT_EQ(policies.top.size(), 1u);
  EXPECT_EQ(policies.top[0].label, std::to_string(policy_id));
  EXPECT_EQ(policies.top[0].window.values.count, 10u);
}

TEST(ForecastServiceObsTest, DrilldownDisabledByDefault) {
  // Drill-down is opt-in (cap 0 = off); the default config pays no per-row
  // family-lookup cost.
  serve::ForecastService service(ManualConfig());
  EXPECT_EQ(service.tenant_drilldown(), nullptr);
  EXPECT_EQ(service.policy_drilldown(), nullptr);
}

// ---------------------------------------------------------------------------
// SessionCallGuard: the per-session serialization contract fails loudly.

[[noreturn]] void ThrowHandler(const char* message) {
  throw std::runtime_error(message);
}

class SessionCallGuardTest : public ::testing::Test {
 protected:
  void SetUp() override { chk::SetFailureHandlerForTest(&ThrowHandler); }
  void TearDown() override { chk::SetFailureHandlerForTest(nullptr); }
};

TEST_F(SessionCallGuardTest, SecondEntrantTripsContract) {
  std::atomic<bool> busy{false};
  core::SessionCallGuard outer(&busy, "concurrent call on one session");
  EXPECT_THROW(
      { core::SessionCallGuard inner(&busy, "concurrent call on one session"); },
      std::runtime_error);
  // The violated entry never took ownership: after the outer guard exits the
  // session is reusable (checked by the scope ending without a throw).
}

TEST_F(SessionCallGuardTest, SequentialCallsAreFine) {
  std::atomic<bool> busy{false};
  for (int i = 0; i < 3; ++i) {
    core::SessionCallGuard guard(&busy, "sequential");
    EXPECT_TRUE(busy.load());
  }
  EXPECT_FALSE(busy.load());
}

TEST_F(SessionCallGuardTest, CombinerEntryPointsAreGuarded) {
  // Re-enter the combiner from inside Predict via a telemetry sink that
  // calls back into it — the same shape as two threads sharing one
  // combiner, but deterministic.
  class ReentrantSink : public obs::TelemetrySink {
   public:
    explicit ReentrantSink(core::EadrlCombiner* combiner)
        : combiner_(combiner) {}
    void Record(const obs::TelemetryEvent& event) override {
      if (std::string(event.kind) == "predict") combiner_->Weights();
    }

   private:
    core::EadrlCombiner* combiner_;
  };

  auto combiner = NewCombiner();
  ReentrantSink sink(combiner.get());
  obs::SetTelemetrySink(&sink);
  EXPECT_THROW(combiner->Predict(Preds(0)), std::runtime_error);
  obs::SetTelemetrySink(nullptr);
  // The guard released on unwind: the combiner is usable again.
  EXPECT_TRUE(std::isfinite(combiner->Predict(Preds(0))));
}

}  // namespace
}  // namespace eadrl
