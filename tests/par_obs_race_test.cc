// Hammers the obs hot paths (Counter, Gauge, Histogram, MetricRegistry,
// telemetry Emit) from thread-pool workers. The assertions check exact
// final values where the API promises them; the real teeth are under
// tools/check.sh (EADRL_SANITIZE=thread), where any data race in these
// paths becomes a TSan report.

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "par/parallel.h"
#include "par/thread_pool.h"

namespace eadrl::obs {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kOpsPerTask = 500;
constexpr size_t kTasks = 64;

TEST(ParObsRaceTest, CounterUnderContentionIsExact) {
  par::ThreadPool pool(kThreads);
  Counter counter;
  par::ParallelFor(
      0, kTasks,
      [&](size_t) {
        for (size_t i = 0; i < kOpsPerTask; ++i) counter.Inc();
      },
      {1, &pool});
  EXPECT_EQ(counter.Value(), static_cast<double>(kTasks * kOpsPerTask));
}

TEST(ParObsRaceTest, GaugeAddUnderContentionIsExact) {
  par::ThreadPool pool(kThreads);
  Gauge gauge;
  par::ParallelFor(
      0, kTasks,
      [&](size_t) {
        for (size_t i = 0; i < kOpsPerTask; ++i) gauge.Add(1.0);
      },
      {1, &pool});
  EXPECT_EQ(gauge.Value(), static_cast<double>(kTasks * kOpsPerTask));
}

TEST(ParObsRaceTest, HistogramUnderContentionKeepsExactCountSumMinMax) {
  par::ThreadPool pool(kThreads);
  Histogram hist(Histogram::LinearBounds(1.0, 1.0, 8));
  // Task t observes values t+1 .. t+kOpsPerTask; every value is an integer
  // so the sum is exact in double arithmetic.
  par::ParallelFor(
      0, kTasks,
      [&](size_t t) {
        for (size_t i = 1; i <= kOpsPerTask; ++i) {
          hist.Observe(static_cast<double>(t + i));
        }
      },
      {1, &pool});

  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kTasks * kOpsPerTask);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, static_cast<double>(kTasks - 1 + kOpsPerTask));
  double expected_sum = 0.0;
  for (size_t t = 0; t < kTasks; ++t) {
    for (size_t i = 1; i <= kOpsPerTask; ++i) {
      expected_sum += static_cast<double>(t + i);
    }
  }
  EXPECT_EQ(snap.sum, expected_sum);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ParObsRaceTest, FirstObservationRaceCannotLoseMinOrMax) {
  // Regression for the seeding race: when many threads race the very first
  // Observe, the +-inf sentinel scheme must still end with the global
  // extremes, never a later observation clobbering a tighter one.
  for (int round = 0; round < 20; ++round) {
    par::ThreadPool pool(kThreads);
    Histogram hist(Histogram::DefaultLatencyBounds());
    par::ParallelFor(
        0, kTasks,
        [&](size_t t) { hist.Observe(static_cast<double>(t)); }, {1, &pool});
    HistogramSnapshot snap = hist.Snapshot();
    EXPECT_EQ(snap.min, 0.0) << "round " << round;
    EXPECT_EQ(snap.max, static_cast<double>(kTasks - 1)) << "round " << round;
    EXPECT_EQ(snap.count, kTasks);
  }
}

TEST(ParObsRaceTest, RegistryLookupsFromWorkersReturnTheSameMetric) {
  par::ThreadPool pool(kThreads);
  MetricRegistry registry;
  std::vector<Counter*> seen(kTasks, nullptr);
  par::ParallelFor(
      0, kTasks,
      [&](size_t t) {
        Counter* c = registry.GetCounter("race_total", {{"kind", "test"}});
        c->Inc();
        seen[t] = c;
        // Mixed-type traffic on other families at the same time.
        registry.GetGauge("race_gauge")->Set(static_cast<double>(t));
        registry.GetHistogram("race_seconds")
            ->Observe(static_cast<double>(t) * 1e-3);
      },
      {1, &pool});
  for (size_t t = 1; t < kTasks; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), static_cast<double>(kTasks));
  EXPECT_EQ(registry.GetHistogram("race_seconds")->Count(), kTasks);
  // Serialization racing further writes must not crash or corrupt.
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("race_total"), std::string::npos);
}

TEST(ParObsRaceTest, TelemetryEmitFromWorkersDeliversEveryEvent) {
  par::ThreadPool pool(kThreads);
  CollectingSink sink;
  SetTelemetrySink(&sink);
  par::ParallelFor(
      0, kTasks,
      [&](size_t t) {
        EADRL_TELEMETRY("race_event", {"task", t}, {"ok", true});
      },
      {1, &pool});
  SetTelemetrySink(nullptr);
  std::vector<TelemetryEvent> events = sink.TakeEvents();
  EXPECT_EQ(events.size(), kTasks);
  for (const auto& e : events) {
    EXPECT_STREQ(e.kind, "race_event");
    ASSERT_EQ(e.fields.size(), 2u);
  }
}

TEST(ParObsRaceTest, TelemetryScopeFollowsTasksAcrossWorkers) {
  // The submitter's ambient TelemetryScope fields must reach events emitted
  // from pool workers — including doubly-nested tasks — so interleaved
  // streams from concurrent datasets stay attributable.
  par::ThreadPool pool(kThreads);
  CollectingSink sink;
  SetTelemetrySink(&sink);
  {
    TelemetryScope scope("dataset", "ds1");
    par::ParallelFor(
        0, 8,
        [&](size_t outer) {
          par::ParallelFor(
              0, 4,
              [&](size_t inner) {
                EADRL_TELEMETRY("ctx_event", {"outer", outer},
                                {"inner", inner});
              },
              {1, &pool});
        },
        {1, &pool});
  }
  SetTelemetrySink(nullptr);
  std::vector<TelemetryEvent> events = sink.TakeEvents();
  ASSERT_EQ(events.size(), 32u);
  for (const auto& e : events) {
    ASSERT_EQ(e.fields.size(), 3u);
    EXPECT_STREQ(e.fields[2].key, "dataset");
    EXPECT_EQ(e.fields[2].str, "ds1");
  }
}

TEST(ParObsRaceTest, PoolOwnMetricsStayConsistentUnderLoad) {
  // The pool instruments itself; drive it hard and check the self-metrics
  // agree with the work actually done.
  Counter* submitted =
      MetricRegistry::Default().GetCounter("eadrl_par_tasks_submitted_total");
  const double before = submitted->Value();
  std::atomic<size_t> ran{0};
  {
    par::ThreadPool pool(kThreads);
    par::ParallelFor(0, kTasks, [&](size_t) { ran.fetch_add(1); },
                     {1, &pool});
  }
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_GE(submitted->Value() - before, static_cast<double>(kTasks));
  // The depth gauge is last-write-wins: a worker that computed its depth
  // before the final decrement may publish after it, so only bound it.
  Gauge* depth = MetricRegistry::Default().GetGauge("eadrl_par_queue_depth");
  EXPECT_GE(depth->Value(), 0.0);
  EXPECT_LE(depth->Value(), static_cast<double>(kTasks));
}

}  // namespace
}  // namespace eadrl::obs
