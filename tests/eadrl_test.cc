#include "core/eadrl.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ts/metrics.h"

namespace eadrl::core {
namespace {

// Validation matrix where model 0 is consistently the most accurate, model 1
// is mediocre and model 2 is bad.
void MakeSkillGapData(size_t t_steps, uint64_t seed, math::Matrix* preds,
                      math::Vec* actuals) {
  Rng rng(seed);
  actuals->resize(t_steps);
  *preds = math::Matrix(t_steps, 3);
  double x = 10.0;
  for (size_t t = 0; t < t_steps; ++t) {
    x = 10.0 + 0.8 * (x - 10.0) + rng.Normal(0, 1.0);
    (*actuals)[t] = x;
    (*preds)(t, 0) = x + rng.Normal(0, 0.1);
    (*preds)(t, 1) = x + rng.Normal(0, 1.5);
    (*preds)(t, 2) = x + 4.0 + rng.Normal(0, 1.0);
  }
}

EadrlConfig FastConfig() {
  EadrlConfig cfg;
  cfg.omega = 5;
  cfg.max_episodes = 25;
  cfg.max_iterations = 60;
  cfg.actor_hidden = {24};
  cfg.critic_hidden = {24};
  cfg.batch_size = 8;
  cfg.warmup_transitions = 16;
  cfg.early_stop = false;
  cfg.seed = 3;
  return cfg;
}

TEST(EadrlTest, InitializeRejectsBadInput) {
  EadrlCombiner combiner(FastConfig());
  math::Matrix preds(4, 2);  // shorter than omega + 2.
  math::Vec actuals(4, 0.0);
  EXPECT_FALSE(combiner.Initialize(preds, actuals).ok());
}

TEST(EadrlTest, TrainingProducesEpisodeRewards) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 1, &preds, &actuals);
  EadrlCombiner combiner(FastConfig());
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  EXPECT_EQ(combiner.episode_rewards().size(), 25u);
  for (double r : combiner.episode_rewards()) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 4.0);  // max rank reward with m = 3.
  }
}

TEST(EadrlTest, WeightsOnSimplex) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 2, &preds, &actuals);
  EadrlCombiner combiner(FastConfig());
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  math::Vec w = combiner.Weights();
  ASSERT_EQ(w.size(), 3u);
  double sum = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double v : w) EXPECT_GE(v, 0.0);
}

TEST(EadrlTest, LearnsToUpweightAccurateModel) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(200, 3, &preds, &actuals);
  EadrlConfig cfg = FastConfig();
  cfg.max_episodes = 60;
  EadrlCombiner combiner(cfg);
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  math::Vec w = combiner.Weights();
  // Model 0 (tight errors) should receive more weight than model 2 (biased).
  EXPECT_GT(w[0], w[2]);
}

TEST(EadrlTest, RewardCurveImprovesWithRankReward) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(200, 4, &preds, &actuals);
  EadrlConfig cfg = FastConfig();
  cfg.max_episodes = 50;
  EadrlCombiner combiner(cfg);
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  const math::Vec& rewards = combiner.episode_rewards();
  double early = 0.0, late = 0.0;
  for (size_t i = 0; i < 10; ++i) early += rewards[i];
  for (size_t i = rewards.size() - 10; i < rewards.size(); ++i) {
    late += rewards[i];
  }
  EXPECT_GE(late, early - 1.0);  // no catastrophic collapse...
  EXPECT_GT(late / 10.0, 1.0);   // ...and clearly above the worst reward.
}

TEST(EadrlTest, PredictRollsWindowForward) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 5, &preds, &actuals);
  EadrlCombiner combiner(FastConfig());
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());

  // Algorithm 1 over a short horizon.
  for (int j = 0; j < 5; ++j) {
    math::Vec step_preds{10.0, 10.5, 14.0};
    double pred = combiner.Predict(step_preds);
    EXPECT_TRUE(std::isfinite(pred));
    // The combined prediction is a convex combination of the base values.
    EXPECT_GE(pred, 10.0 - 1e-9);
    EXPECT_LE(pred, 14.0 + 1e-9);
    combiner.Update(step_preds, 10.2);
  }
}

TEST(EadrlTest, EarlyStopBoundsEpisodes) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(150, 6, &preds, &actuals);
  EadrlConfig cfg = FastConfig();
  cfg.max_episodes = 100;
  cfg.early_stop = true;
  cfg.early_stop_patience = 5;
  EadrlCombiner combiner(cfg);
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  EXPECT_LE(combiner.converged_episode(), 100u);
  EXPECT_EQ(combiner.episode_rewards().size(), combiner.converged_episode());
}

TEST(EadrlTest, NrmseRewardVariantRuns) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 7, &preds, &actuals);
  EadrlConfig cfg = FastConfig();
  cfg.reward_type = rl::RewardType::kOneMinusNrmse;
  EadrlCombiner combiner(cfg);
  ASSERT_TRUE(combiner.Initialize(preds, actuals).ok());
  for (double r : combiner.episode_rewards()) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_LE(r, 1.0);
  }
}

TEST(EadrlTest, UniformSamplingVariantRuns) {
  math::Matrix preds;
  math::Vec actuals;
  MakeSkillGapData(120, 8, &preds, &actuals);
  EadrlConfig cfg = FastConfig();
  cfg.sampling = rl::SamplingStrategy::kUniform;
  EadrlCombiner combiner(cfg);
  EXPECT_TRUE(combiner.Initialize(preds, actuals).ok());
}

}  // namespace
}  // namespace eadrl::core
