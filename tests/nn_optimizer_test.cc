#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace eadrl::nn {
namespace {

// Minimizes f(w) = (w - 3)^2 with gradient 2(w - 3).
template <typename Opt>
double Minimize(Opt& opt, int steps) {
  Param w(1, 1);
  w.value(0, 0) = 0.0;
  opt.Register({&w});
  for (int i = 0; i < steps; ++i) {
    w.grad(0, 0) = 2.0 * (w.value(0, 0) - 3.0);
    opt.StepAndZero();
  }
  return w.value(0, 0);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sgd opt(0.1);
  EXPECT_NEAR(Minimize(opt, 200), 3.0, 1e-6);
}

TEST(SgdTest, MomentumConverges) {
  Sgd opt(0.05, 0.9);
  EXPECT_NEAR(Minimize(opt, 400), 3.0, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam opt(0.1);
  EXPECT_NEAR(Minimize(opt, 500), 3.0, 1e-4);
}

TEST(AdamTest, StepLeavesGradientsUntouchedUntilZero) {
  Param w(1, 1);
  w.grad(0, 0) = 1.0;
  Adam opt(0.01);
  opt.Register({&w});
  opt.Step();
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 1.0);
  ZeroGrads({&w});
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 0.0);
}

TEST(AdamTest, FirstStepHasLearningRateMagnitude) {
  // With bias correction, the first Adam update is ~lr * sign(grad).
  Param w(1, 1);
  w.value(0, 0) = 0.0;
  w.grad(0, 0) = 123.0;
  Adam opt(0.01);
  opt.Register({&w});
  opt.Step();
  EXPECT_NEAR(w.value(0, 0), -0.01, 1e-6);
}

TEST(SgdTest, MultipleParamsUpdatedIndependently) {
  Param a(1, 1), b(1, 1);
  a.value(0, 0) = 1.0;
  b.value(0, 0) = -1.0;
  a.grad(0, 0) = 1.0;
  b.grad(0, 0) = -1.0;
  Sgd opt(0.5);
  opt.Register({&a, &b});
  opt.Step();
  EXPECT_DOUBLE_EQ(a.value(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(b.value(0, 0), -0.5);
}

}  // namespace
}  // namespace eadrl::nn
