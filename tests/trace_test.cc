#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/metrics.h"

namespace eadrl::obs {
namespace {

// Every test installs its own buffer and uninstalls it on exit, so a failing
// assertion can never leave a dangling global sink for the next test.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetTraceBuffer(nullptr); }

  TraceBuffer buffer_;
};

TEST_F(TraceTest, DisabledSpanIsUnarmedAndRecordsNothing) {
  ASSERT_FALSE(TracingEnabled());
  {
    Span span("train");
    EXPECT_FALSE(span.armed());
    span.SetAttr("ignored", 1);  // must be a no-op, not a crash
    EXPECT_EQ(span.span_id(), 0u);
  }
  SetTraceBuffer(&buffer_);
  EXPECT_EQ(buffer_.size(), 0u);
}

TEST_F(TraceTest, NestedSpansShareATraceAndChainParents) {
  SetTraceBuffer(&buffer_);
  uint64_t outer_id = 0;
  uint64_t trace_id = 0;
  {
    Span outer("train");
    ASSERT_TRUE(outer.armed());
    outer_id = outer.span_id();
    trace_id = outer.trace_id();
    EXPECT_EQ(outer.parent_id(), 0u);  // trace root
    {
      Span inner("episode");
      EXPECT_EQ(inner.trace_id(), trace_id);
      EXPECT_EQ(inner.parent_id(), outer_id);
    }
  }
  const std::vector<FinishedSpan> spans = buffer_.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Snapshot sorts by start time: outer started first.
  EXPECT_STREQ(spans[0].name, "train");
  EXPECT_STREQ(spans[1].name, "episode");
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_GE(spans[0].dur_us, spans[1].dur_us);
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
}

TEST_F(TraceTest, SiblingRootsGetDistinctTraceIds) {
  SetTraceBuffer(&buffer_);
  uint64_t first = 0;
  {
    Span a("train");
    first = a.trace_id();
  }
  Span b("train");
  EXPECT_NE(b.trace_id(), first);
  EXPECT_EQ(b.parent_id(), 0u);
}

TEST_F(TraceTest, ScopedTraceParentMasksAndRestoresTheStack) {
  SetTraceBuffer(&buffer_);
  Span outer("train");
  {
    ScopedTraceParent mask(TraceParent{777, 888});
    // The outer span is hidden: new spans parent to the remote identity.
    Span remote_child("par_task");
    EXPECT_EQ(remote_child.trace_id(), 777u);
    EXPECT_EQ(remote_child.parent_id(), 888u);
  }
  Span local_child("episode");
  EXPECT_EQ(local_child.trace_id(), outer.trace_id());
  EXPECT_EQ(local_child.parent_id(), outer.span_id());
}

TEST_F(TraceTest, ZeroRemoteParentStartsANewTrace) {
  SetTraceBuffer(&buffer_);
  Span outer("train");
  ScopedTraceParent mask(TraceParent{});  // submitter had no active span
  Span task("par_task");
  EXPECT_NE(task.trace_id(), outer.trace_id());
  EXPECT_EQ(task.parent_id(), 0u);
}

TEST_F(TraceTest, CrossThreadChildKeepsTheSubmittersIdentity) {
  SetTraceBuffer(&buffer_);
  TraceParent parent;
  uint64_t child_parent_id = 0;
  uint64_t child_trace_id = 0;
  {
    Span outer("train");
    parent = CurrentTraceParent();
    ASSERT_EQ(parent.span_id, outer.span_id());
    std::thread worker([&] {
      ScopedTraceParent mask(parent);
      Span task("par_task");
      child_parent_id = task.parent_id();
      child_trace_id = task.trace_id();
    });
    worker.join();
    EXPECT_EQ(child_parent_id, outer.span_id());
    EXPECT_EQ(child_trace_id, outer.trace_id());
  }
}

TEST_F(TraceTest, ChromeExportIsValidJsonWithExpectedShape) {
  SetCurrentThreadTraceName("test-main");
  SetTraceBuffer(&buffer_);
  {
    Span span("train");
    span.SetAttr("restarts", 3);
    span.SetAttr("note", std::string("quote\"and\\slash"));
    span.SetAttr("loss", 0.25);
  }
  SetTraceBuffer(nullptr);

  auto parsed = json::Parse(buffer_.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& root = parsed.value();
  const json::Value* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(root.Find("displayTimeUnit")->AsString(), "ms");
  EXPECT_DOUBLE_EQ(
      root.Find("otherData")->Find("dropped_spans")->AsNumber(), 0.0);

  bool saw_process_name = false;
  bool saw_thread_name = false;
  const json::Value* x_event = nullptr;
  for (const json::Value& event : events->AsArray()) {
    const std::string& ph = event.Find("ph")->AsString();
    if (ph == "M" && event.Find("name")->AsString() == "process_name") {
      saw_process_name = true;
    }
    if (ph == "M" && event.Find("name")->AsString() == "thread_name" &&
        event.Find("args")->Find("name")->AsString() == "test-main") {
      saw_thread_name = true;
    }
    if (ph == "X") x_event = &event;
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
  ASSERT_NE(x_event, nullptr);
  EXPECT_EQ(x_event->Find("name")->AsString(), "train");
  EXPECT_EQ(x_event->Find("cat")->AsString(), "eadrl");
  EXPECT_GE(x_event->Find("dur")->AsNumber(), 0.0);
  EXPECT_GE(x_event->Find("ts")->AsNumber(), 0.0);
  const json::Value* args = x_event->Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_GT(args->Find("span_id")->AsNumber(), 0.0);
  EXPECT_EQ(args->Find("parent_id"), nullptr);  // root span
  EXPECT_DOUBLE_EQ(args->Find("restarts")->AsNumber(), 3.0);
  EXPECT_EQ(args->Find("note")->AsString(), "quote\"and\\slash");
  EXPECT_DOUBLE_EQ(args->Find("loss")->AsNumber(), 0.25);
}

TEST_F(TraceTest, CapacityOverflowCountsDroppedSpans) {
  TraceBuffer tiny(/*capacity=*/16);  // one slot per shard
  SetTraceBuffer(&tiny);
  for (int i = 0; i < 64; ++i) {
    Span span("episode");
  }
  SetTraceBuffer(nullptr);
  EXPECT_GT(tiny.dropped(), 0u);
  EXPECT_LE(tiny.size(), 16u);
  const std::string exported = tiny.ToChromeTraceJson();
  auto parsed = json::Parse(exported);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(
      parsed->Find("otherData")->Find("dropped_spans")->AsNumber(),
      static_cast<double>(tiny.dropped()));
}

TEST_F(TraceTest, SpanProfilerFeedsTheMetricRegistry) {
  SetTraceBuffer(&buffer_);
  Histogram* duration = MetricRegistry::Default().GetHistogram(
      "eadrl_span_seconds", {}, {{"span", "checkpoint"}});
  Counter* self_time = MetricRegistry::Default().GetCounter(
      "eadrl_span_self_seconds_total", {{"span", "checkpoint"}});
  const uint64_t count_before = duration->Count();
  const double self_before = self_time->Value();
  {
    Span span("checkpoint");
  }
  EXPECT_EQ(duration->Count(), count_before + 1);
  EXPECT_GE(self_time->Value(), self_before);
}

TEST_F(TraceTest, UnarmedSpansDoNotFeedTheProfiler) {
  ASSERT_FALSE(TracingEnabled());
  Histogram* duration = MetricRegistry::Default().GetHistogram(
      "eadrl_span_seconds", {}, {{"span", "eval_rollout"}});
  const uint64_t count_before = duration->Count();
  {
    Span span("eval_rollout");
  }
  EXPECT_EQ(duration->Count(), count_before);
}

TEST_F(TraceTest, SpanRegistryMatchesSpansDef) {
  EXPECT_FALSE(RegisteredSpans().empty());
  for (const char* name : RegisteredSpans()) {
    EXPECT_TRUE(IsRegisteredSpan(name)) << name;
  }
  EXPECT_TRUE(IsRegisteredSpan("par_task"));
  EXPECT_TRUE(IsRegisteredSpan("ddpg_update"));
  EXPECT_FALSE(IsRegisteredSpan("definitely_not_a_span"));
}

TEST_F(TraceTest, RecordAfterUnsetIsSilentlyDiscarded) {
  SetTraceBuffer(&buffer_);
  Span* leaked = new Span("train");  // finished after the buffer is gone
  SetTraceBuffer(nullptr);
  delete leaked;
  EXPECT_EQ(buffer_.size(), 0u);
}

}  // namespace
}  // namespace eadrl::obs
