#include "math/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace eadrl::math {
namespace {

TEST(StatsTest, MeanVarianceStddev) {
  Vec v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(Stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

TEST(StatsTest, QuantileEndpointsAndMiddle) {
  Vec v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(StatsTest, MinMax) {
  Vec v{3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
}

TEST(StatsTest, CovarianceAndCorrelation) {
  Vec a{1, 2, 3, 4};
  Vec b{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  Vec c{8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(StatsTest, CorrelationOfConstantIsZero) {
  Vec a{1, 2, 3};
  Vec b{5, 5, 5};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(StatsTest, AutocorrelationLagZeroIsOne) {
  Vec v{1, 3, 2, 5, 4, 6};
  EXPECT_NEAR(Autocorrelation(v, 0), 1.0, 1e-12);
}

TEST(StatsTest, AutocorrelationDetectsPeriodicity) {
  // Period-4 wave: autocorrelation at lag 4 should be strongly positive,
  // at lag 2 strongly negative.
  Vec v;
  for (int i = 0; i < 100; ++i) v.push_back(std::sin(i * M_PI / 2.0));
  EXPECT_GT(Autocorrelation(v, 4), 0.8);
  EXPECT_LT(Autocorrelation(v, 2), -0.8);
}

TEST(StatsTest, FractionalRanksNoTies) {
  Vec v{30, 10, 20};
  Vec r = FractionalRanks(v);
  EXPECT_EQ(r, (Vec{3, 1, 2}));
}

TEST(StatsTest, FractionalRanksWithTies) {
  Vec v{1, 2, 2, 3};
  Vec r = FractionalRanks(v);
  EXPECT_EQ(r, (Vec{1, 2.5, 2.5, 4}));
}

TEST(StatsTest, FractionalRanksAllTied) {
  Vec r = FractionalRanks({5, 5, 5});
  for (double x : r) EXPECT_DOUBLE_EQ(x, 2.0);
}

}  // namespace
}  // namespace eadrl::math
