#include "ts/diagnostics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/special.h"

namespace eadrl::ts {
namespace {

math::Vec MakeAr1(size_t n, double phi, uint64_t seed) {
  Rng rng(seed);
  math::Vec v(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x = phi * x + rng.Normal(0, 1);
    v[t] = x;
  }
  return v;
}

TEST(AcfTest, Ar1DecaysGeometrically) {
  math::Vec v = MakeAr1(5000, 0.7, 1);
  math::Vec acf = Acf(v, 3);
  EXPECT_NEAR(acf[0], 0.7, 0.05);
  EXPECT_NEAR(acf[1], 0.49, 0.06);
  EXPECT_NEAR(acf[2], 0.343, 0.07);
}

TEST(PacfTest, Ar1CutsOffAfterLagOne) {
  math::Vec v = MakeAr1(5000, 0.7, 2);
  auto pacf = Pacf(v, 4);
  ASSERT_TRUE(pacf.ok());
  EXPECT_NEAR((*pacf)[0], 0.7, 0.05);
  for (size_t k = 1; k < 4; ++k) {
    EXPECT_LT(std::fabs((*pacf)[k]), 0.08) << "lag " << k + 1;
  }
}

TEST(PacfTest, Ar2HasTwoSignificantLags) {
  Rng rng(3);
  math::Vec v(5000);
  double x1 = 0, x2 = 0;
  for (size_t t = 0; t < v.size(); ++t) {
    double x = 0.5 * x1 + 0.3 * x2 + rng.Normal(0, 1);
    v[t] = x;
    x2 = x1;
    x1 = x;
  }
  auto pacf = Pacf(v, 4);
  ASSERT_TRUE(pacf.ok());
  EXPECT_GT(std::fabs((*pacf)[0]), 0.3);
  EXPECT_NEAR((*pacf)[1], 0.3, 0.06);
  EXPECT_LT(std::fabs((*pacf)[2]), 0.08);
}

TEST(PacfTest, RejectsBadLag) {
  math::Vec v(10, 1.0);
  EXPECT_FALSE(Pacf(v, 0).ok());
  EXPECT_FALSE(Pacf(v, 10).ok());
}

TEST(ChiSquaredTest, KnownValues) {
  // P(chi2_1 > 3.841) = 0.05; P(chi2_5 > 11.07) = 0.05.
  EXPECT_NEAR(ChiSquaredSurvival(3.841, 1), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquaredSurvival(11.07, 5), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquaredSurvival(0.0, 3), 1.0, 1e-12);
}

TEST(LjungBoxTest, WhiteNoiseNotRejected) {
  Rng rng(4);
  math::Vec v(2000);
  for (double& x : v) x = rng.Normal(0, 1);
  auto result = LjungBoxTest(v, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.01);
}

TEST(LjungBoxTest, Ar1StronglyRejected) {
  math::Vec v = MakeAr1(2000, 0.6, 5);
  auto result = LjungBoxTest(v, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->p_value, 1e-6);
  EXPECT_GT(result->statistic, 100.0);
}

TEST(LjungBoxTest, RejectsBadArguments) {
  math::Vec v(50, 1.0);
  EXPECT_FALSE(LjungBoxTest(v, 0).ok());
  EXPECT_FALSE(LjungBoxTest(v, 5, 5).ok());
}

TEST(AdfTest, StationarySeriesDetected) {
  math::Vec v = MakeAr1(1500, 0.5, 6);
  auto result = AdfTest(v);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stationary_at_5pct);
  EXPECT_LT(result->statistic, -2.86);
}

TEST(AdfTest, RandomWalkNotStationary) {
  Rng rng(7);
  math::Vec v(1500);
  double x = 0.0;
  for (double& val : v) {
    x += rng.Normal(0, 1);
    val = x;
  }
  auto result = AdfTest(v);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stationary_at_5pct);
}

TEST(SeasonalPeriodTest, FindsSinePeriod) {
  math::Vec v(600);
  Rng rng(8);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           rng.Normal(0, 0.2);
  }
  size_t period = EstimateSeasonalPeriod(v);
  // The ACF peaks at the period or a multiple; accept 24 or 48.
  EXPECT_TRUE(period == 24 || period == 48) << period;
}

TEST(SeasonalPeriodTest, ZeroForWhiteNoise) {
  Rng rng(9);
  math::Vec v(600);
  for (double& x : v) x = rng.Normal(0, 1);
  EXPECT_EQ(EstimateSeasonalPeriod(v), 0u);
}

}  // namespace
}  // namespace eadrl::ts
