#include "ts/decompose.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/stats.h"

namespace eadrl::ts {
namespace {

TEST(DecomposeTest, RecoversTrendPlusSeason) {
  const size_t n = 240, period = 12;
  math::Vec v(n);
  for (size_t t = 0; t < n; ++t) {
    double trend = 0.1 * static_cast<double>(t);
    double season =
        3.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / period);
    v[t] = trend + season + 10.0;
  }
  auto d = ClassicalDecompose(v, period);
  ASSERT_TRUE(d.ok());

  // Trend estimate tracks the linear trend away from the endpoints.
  for (size_t t = period; t + period < n; ++t) {
    EXPECT_NEAR(d->trend[t], 10.0 + 0.1 * static_cast<double>(t), 0.3);
  }
  // Seasonal component is zero-mean and periodic.
  double mean = 0.0;
  for (size_t s = 0; s < period; ++s) mean += d->seasonal[s];
  EXPECT_NEAR(mean / period, 0.0, 1e-9);
  for (size_t t = 0; t + period < n; ++t) {
    EXPECT_DOUBLE_EQ(d->seasonal[t], d->seasonal[t + period]);
  }
  // Remainder is small away from the endpoints (noiseless signal).
  for (size_t t = period; t + period < n; ++t) {
    EXPECT_LT(std::fabs(d->remainder[t]), 0.5);
  }
}

TEST(DecomposeTest, ComponentsSumToSeries) {
  const size_t n = 120, period = 7;
  math::Vec v(n);
  for (size_t t = 0; t < n; ++t) {
    v[t] = std::sin(0.9 * static_cast<double>(t)) +
           0.05 * static_cast<double>(t);
  }
  auto d = ClassicalDecompose(v, period);
  ASSERT_TRUE(d.ok());
  for (size_t t = 0; t < n; ++t) {
    EXPECT_NEAR(d->trend[t] + d->seasonal[t] + d->remainder[t], v[t], 1e-9);
  }
}

TEST(DecomposeTest, OddPeriodSupported) {
  math::Vec v(90);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = static_cast<double>(t % 5);
  }
  auto d = ClassicalDecompose(v, 5);
  ASSERT_TRUE(d.ok());
  // A pure period-5 sawtooth has (near-)constant trend in the interior.
  for (size_t t = 5; t + 5 < v.size(); ++t) {
    EXPECT_NEAR(d->trend[t], 2.0, 1e-9);
  }
}

TEST(DecomposeTest, RejectsBadInput) {
  math::Vec v(10, 1.0);
  EXPECT_FALSE(ClassicalDecompose(v, 1).ok());
  EXPECT_FALSE(ClassicalDecompose(v, 8).ok());
}

TEST(DecomposeTest, SeriesOverloadUsesDeclaredPeriod) {
  math::Vec v(60);
  for (size_t t = 0; t < v.size(); ++t) v[t] = static_cast<double>(t % 6);
  Series with_period("x", v, "", 6);
  EXPECT_TRUE(ClassicalDecompose(with_period).ok());
  Series without("x", v);
  EXPECT_FALSE(ClassicalDecompose(without).ok());
}

}  // namespace
}  // namespace eadrl::ts
