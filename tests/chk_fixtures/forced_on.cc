// Compiled with contracts forced ON regardless of the build's EADRL_CHECKS.
#define EADRL_CHK_FORCE_ON 1

#include "chk/chk.h"

#include "chk_fixtures.h"

namespace eadrl::chk_testing {

bool ForcedOnEnabled() { return EADRL_CHK_ENABLED != 0; }

void ForcedOnSimplex(const std::vector<double>& weights) {
  EADRL_CHK_SIMPLEX(weights, 1e-6, "forced-on simplex");
}

void ForcedOnFinite(const std::vector<double>& values) {
  EADRL_CHK_FINITE(values, "forced-on finite");
}

void ForcedOnBound(std::size_t index, std::size_t size) {
  EADRL_CHK_BOUND(index, size, "forced-on bound");
}

void ForcedOnRange(double x, double lo, double hi) {
  EADRL_CHK_RANGE(x, lo, hi, "forced-on range");
}

}  // namespace eadrl::chk_testing
