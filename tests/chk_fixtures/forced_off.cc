// Compiled with contracts forced OFF regardless of the build's EADRL_CHECKS.
#define EADRL_CHK_FORCE_OFF 1

#include "chk/chk.h"

#include "chk_fixtures.h"

namespace eadrl::chk_testing {

bool ForcedOffEnabled() { return EADRL_CHK_ENABLED != 0; }

bool ForcedOffEvaluatesArguments() {
  bool evaluated = false;
  const std::vector<double> dummy = {1.0};
  auto touch = [&]() -> const std::vector<double>& {
    evaluated = true;
    return dummy;
  };
  EADRL_CHK_FINITE(touch(), "forced-off argument evaluation");
  // The disabled macro expands to static_cast<void>(0), dropping `touch()`
  // unevaluated; keep the names referenced so -Werror stays quiet.
  static_cast<void>(touch);
  static_cast<void>(dummy);
  return evaluated;
}

void ForcedOffSimplex(const std::vector<double>& weights) {
  EADRL_CHK_SIMPLEX(weights, 1e-6, "forced-off simplex");
  static_cast<void>(weights);
}

}  // namespace eadrl::chk_testing
