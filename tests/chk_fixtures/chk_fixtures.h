#ifndef EADRL_TESTS_CHK_FIXTURES_CHK_FIXTURES_H_
#define EADRL_TESTS_CHK_FIXTURES_CHK_FIXTURES_H_

#include <cstddef>
#include <vector>

// Two fixture translation units compiled with the per-TU force macros
// (EADRL_CHK_FORCE_ON in forced_on.cc, EADRL_CHK_FORCE_OFF in forced_off.cc)
// so tests/chk_test.cc can observe both contract modes in one binary, no
// matter how the build configured EADRL_CHECKS.

namespace eadrl::chk_testing {

// forced_on.cc — contracts guaranteed live.
bool ForcedOnEnabled();
void ForcedOnSimplex(const std::vector<double>& weights);
void ForcedOnFinite(const std::vector<double>& values);
void ForcedOnBound(std::size_t index, std::size_t size);
void ForcedOnRange(double x, double lo, double hi);

// forced_off.cc — contracts guaranteed compiled out.
bool ForcedOffEnabled();
/// Returns true if the disabled EADRL_CHK_FINITE evaluated its argument
/// expression (it must not — that is the zero-cost guarantee).
bool ForcedOffEvaluatesArguments();
/// Must be a no-op for any input, valid or not.
void ForcedOffSimplex(const std::vector<double>& weights);

}  // namespace eadrl::chk_testing

#endif  // EADRL_TESTS_CHK_FIXTURES_CHK_FIXTURES_H_
