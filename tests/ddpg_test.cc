#include "rl/ddpg.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "rl/env.h"

namespace eadrl::rl {
namespace {

DdpgConfig SmallConfig(size_t state_dim, size_t action_dim) {
  DdpgConfig cfg;
  cfg.state_dim = state_dim;
  cfg.action_dim = action_dim;
  cfg.actor_hidden = {16};
  cfg.critic_hidden = {16};
  cfg.seed = 7;
  return cfg;
}

TEST(DdpgTest, ActionsLiveOnTheSimplex) {
  DdpgAgent agent(SmallConfig(3, 4));
  math::Vec a = agent.Act({0.1, -0.2, 0.3});
  ASSERT_EQ(a.size(), 4u);
  double sum = std::accumulate(a.begin(), a.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double w : a) EXPECT_GT(w, 0.0);
}

TEST(DdpgTest, InitialPolicyNearUniform) {
  // DDPG's small output-layer init keeps logits near zero => near-uniform
  // softmax.
  DdpgAgent agent(SmallConfig(3, 5));
  math::Vec a = agent.Act({1.0, 2.0, -1.0});
  for (double w : a) EXPECT_NEAR(w, 0.2, 0.02);
}

TEST(DdpgTest, NoisyActionStaysOnSimplex) {
  DdpgAgent agent(SmallConfig(2, 3));
  math::Vec a = agent.ActWithNoise({0.5, 0.5}, {10.0, -10.0, 0.0});
  double sum = std::accumulate(a.begin(), a.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(a[0], 0.9);  // huge positive noise on logit 0 dominates.
}

TEST(DdpgTest, DeterministicForSeed) {
  DdpgAgent a(SmallConfig(2, 2)), b(SmallConfig(2, 2));
  math::Vec s{0.3, -0.3};
  EXPECT_EQ(a.Act(s), b.Act(s));
}

// A contextual-bandit-like environment: reward is highest when all weight is
// on model 0. The agent should learn to favor index 0.
TEST(DdpgTest, LearnsToFavorRewardingAction) {
  DdpgConfig cfg = SmallConfig(2, 2);
  cfg.actor_lr = 0.005;
  cfg.critic_lr = 0.02;
  cfg.gamma = 0.0;  // bandit: no bootstrapping needed.
  DdpgAgent agent(cfg);

  Rng rng(11);
  std::vector<Transition> batch;
  for (int step = 0; step < 600; ++step) {
    batch.clear();
    for (int i = 0; i < 16; ++i) {
      Transition t;
      t.state = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
      // Random exploratory simplex action.
      double w0 = rng.Uniform(0, 1);
      t.action = {w0, 1.0 - w0};
      t.reward = t.action[0];  // more weight on 0 => more reward.
      t.next_state = t.state;
      t.terminal = true;
      batch.push_back(std::move(t));
    }
    agent.Update(batch);
  }
  math::Vec a = agent.Act({0.2, 0.4});
  EXPECT_GT(a[0], 0.75);
}

TEST(DdpgTest, CriticLearnsRewardValues) {
  DdpgConfig cfg = SmallConfig(1, 2);
  cfg.gamma = 0.0;
  cfg.critic_lr = 0.02;
  DdpgAgent agent(cfg);

  Rng rng(13);
  std::vector<Transition> batch;
  for (int step = 0; step < 500; ++step) {
    batch.clear();
    for (int i = 0; i < 16; ++i) {
      Transition t;
      t.state = {0.0};
      double w0 = rng.Uniform(0, 1);
      t.action = {w0, 1.0 - w0};
      t.reward = 3.0 * t.action[0];
      t.next_state = t.state;
      t.terminal = true;
      batch.push_back(std::move(t));
    }
    agent.Update(batch);
  }
  double q_good = agent.QValue({0.0}, {1.0, 0.0});
  double q_bad = agent.QValue({0.0}, {0.0, 1.0});
  EXPECT_GT(q_good, q_bad + 1.0);
  EXPECT_NEAR(q_good, 3.0, 1.0);
}

TEST(DdpgTest, UpdateReturnsFiniteDecreasingLoss) {
  DdpgConfig cfg = SmallConfig(2, 2);
  cfg.gamma = 0.0;
  DdpgAgent agent(cfg);
  Rng rng(17);

  auto make_batch = [&]() {
    std::vector<Transition> batch;
    for (int i = 0; i < 16; ++i) {
      Transition t;
      t.state = {0.5, -0.5};
      t.action = {0.5, 0.5};
      t.reward = 1.0;
      t.next_state = t.state;
      t.terminal = true;
      batch.push_back(std::move(t));
    }
    return batch;
  };

  double first = agent.Update(make_batch());
  double last = first;
  for (int i = 0; i < 200; ++i) last = agent.Update(make_batch());
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_LT(last, first);
  EXPECT_LT(last, 0.05);  // constant reward is easy to fit.
}

}  // namespace
}  // namespace eadrl::rl
