#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/pcr.h"

namespace eadrl::models {
namespace {

// Collinear design: x2 = x0 + x1 + tiny noise; y depends on x0 - x1.
void MakeCollinearData(size_t n, uint64_t seed, math::Matrix* x,
                       math::Vec* y) {
  Rng rng(seed);
  *x = math::Matrix(n, 3);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    (*x)(i, 0) = a;
    (*x)(i, 1) = b;
    (*x)(i, 2) = a + b + rng.Normal(0, 0.01);
    (*y)[i] = 2.0 * a - b + rng.Normal(0, 0.01);
  }
}

TEST(PcrTest, FitsWithFullComponents) {
  math::Matrix x;
  math::Vec y;
  MakeCollinearData(200, 1, &x, &y);
  PcrRegressor pcr(3);
  ASSERT_TRUE(pcr.Fit(x, y).ok());
  double mse = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    double d = pcr.Predict(x.Row(i)) - y[i];
    mse += d * d;
  }
  EXPECT_LT(mse / static_cast<double>(x.rows()), 0.01);
}

TEST(PcrTest, ComponentCountClampedToFeatures) {
  math::Matrix x;
  math::Vec y;
  MakeCollinearData(100, 2, &x, &y);
  PcrRegressor pcr(10);
  ASSERT_TRUE(pcr.Fit(x, y).ok());
  EXPECT_EQ(pcr.effective_components(), 3u);
}

TEST(PcrTest, OneComponentCapturesDominantDirection) {
  // y aligned with the dominant principal direction.
  Rng rng(3);
  math::Matrix x(200, 2);
  math::Vec y(200);
  for (size_t i = 0; i < 200; ++i) {
    double t = rng.Uniform(-3, 3);
    x(i, 0) = t + rng.Normal(0, 0.05);
    x(i, 1) = t + rng.Normal(0, 0.05);
    y[i] = t;
  }
  PcrRegressor pcr(1);
  ASSERT_TRUE(pcr.Fit(x, y).ok());
  EXPECT_NEAR(pcr.Predict({2.0, 2.0}), 2.0, 0.15);
}

TEST(PlsTest, RecoversLinearModel) {
  math::Matrix x;
  math::Vec y;
  MakeCollinearData(200, 4, &x, &y);
  PlsRegressor pls(3);
  ASSERT_TRUE(pls.Fit(x, y).ok());
  double mse = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    double d = pls.Predict(x.Row(i)) - y[i];
    mse += d * d;
  }
  EXPECT_LT(mse / static_cast<double>(x.rows()), 0.01);
}

TEST(PlsTest, SingleComponentOutperformsPcrOnTargetAlignedData) {
  // The high-variance direction of X is irrelevant to y; PLS (supervised)
  // should find the predictive direction with one component, PCR should not.
  Rng rng(5);
  math::Matrix x(300, 2);
  math::Vec y(300);
  for (size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.Uniform(-10, 10);  // dominant variance, irrelevant.
    x(i, 1) = rng.Uniform(-1, 1);    // small variance, drives y.
    y[i] = 5.0 * x(i, 1);
  }
  PlsRegressor pls(1);
  PcrRegressor pcr(1);
  ASSERT_TRUE(pls.Fit(x, y).ok());
  ASSERT_TRUE(pcr.Fit(x, y).ok());

  auto mse = [&](auto& model) {
    double s = 0.0;
    for (size_t i = 0; i < 300; ++i) {
      double d = model.Predict(x.Row(i)) - y[i];
      s += d * d;
    }
    return s / 300.0;
  };
  EXPECT_LT(mse(pls), mse(pcr) * 0.5);
}

TEST(PlsTest, ConstantTarget) {
  Rng rng(6);
  math::Matrix x(50, 2);
  for (double& v : x.data()) v = rng.Uniform(0, 1);
  math::Vec y(50, 2.5);
  PlsRegressor pls(2);
  ASSERT_TRUE(pls.Fit(x, y).ok());
  EXPECT_NEAR(pls.Predict({0.5, 0.5}), 2.5, 1e-6);
}

}  // namespace
}  // namespace eadrl::models
