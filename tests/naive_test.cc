#include "models/naive.h"

#include <gtest/gtest.h>

#include "models/forecaster.h"

namespace eadrl::models {
namespace {

TEST(NaiveTest, PredictsLastValue) {
  NaiveForecaster model;
  ASSERT_TRUE(model.Fit(ts::Series("x", {1, 2, 3})).ok());
  EXPECT_DOUBLE_EQ(model.PredictNext(), 3.0);
  model.Observe(7.0);
  EXPECT_DOUBLE_EQ(model.PredictNext(), 7.0);
}

TEST(NaiveTest, RejectsEmpty) {
  NaiveForecaster model;
  EXPECT_FALSE(model.Fit(ts::Series("x", {})).ok());
}

TEST(SeasonalNaiveTest, PredictsValueOneSeasonAgo) {
  SeasonalNaiveForecaster model(3);
  ASSERT_TRUE(model.Fit(ts::Series("x", {1, 2, 3, 4, 5, 6})).ok());
  // Last period is {4, 5, 6}; the next forecast repeats 4.
  EXPECT_DOUBLE_EQ(model.PredictNext(), 4.0);
  model.Observe(7.0);
  EXPECT_DOUBLE_EQ(model.PredictNext(), 5.0);
  model.Observe(8.0);
  model.Observe(9.0);
  EXPECT_DOUBLE_EQ(model.PredictNext(), 7.0);
}

TEST(SeasonalNaiveTest, RejectsSeriesShorterThanPeriod) {
  SeasonalNaiveForecaster model(10);
  EXPECT_FALSE(model.Fit(ts::Series("x", {1, 2, 3})).ok());
}

TEST(SeasonalNaiveTest, NameIncludesPeriod) {
  EXPECT_EQ(SeasonalNaiveForecaster(24).name(), "snaive(24)");
}

TEST(RollingForecastTest, ProducesOnePredictionPerStep) {
  NaiveForecaster model;
  ASSERT_TRUE(model.Fit(ts::Series("x", {10.0})).ok());
  ts::Series eval("eval", {1, 2, 3});
  math::Vec preds = RollingForecast(&model, eval);
  // Naive: each prediction is the previously observed value.
  EXPECT_EQ(preds, (math::Vec{10, 1, 2}));
}

}  // namespace
}  // namespace eadrl::models
