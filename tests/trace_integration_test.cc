// End-to-end tracing acceptance: a parallel suite run (4 worker threads)
// with an installed TraceBuffer must export a well-formed Chrome trace whose
// span tree is causally consistent across threads — worker-side spans reach
// their dataset/restart ancestors through parent ids, and every scheduler
// span carries its queue-wait/steal attributes.

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "exp/experiment.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "ts/datasets.h"

namespace eadrl {
namespace {

exp::ExperimentOptions FastOptions() {
  exp::ExperimentOptions opt;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 3;
  opt.eadrl.omega = 5;
  opt.eadrl.restarts = 2;
  opt.eadrl.max_episodes = 6;
  opt.eadrl.max_iterations = 40;
  opt.eadrl.actor_hidden = {16};
  opt.eadrl.critic_hidden = {16};
  opt.eadrl.batch_size = 8;
  opt.eadrl.warmup_transitions = 16;
  opt.include_standalone = false;
  opt.seed = 42;
  return opt;
}

const obs::TelemetryField* FindAttr(const obs::FinishedSpan& span,
                                    const char* key) {
  for (const obs::TelemetryField& f : span.attrs) {
    if (std::strcmp(f.key, key) == 0) return &f;
  }
  return nullptr;
}

class TraceIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    par::SetDefaultThreads(4);
    buffer_ = new obs::TraceBuffer();
    obs::SetCurrentThreadTraceName("main");
    obs::SetTraceBuffer(buffer_);

    auto first = ts::MakeDataset(2, 42, 220);
    auto second = ts::MakeDataset(15, 42, 220);
    ASSERT_TRUE(first.ok() && second.ok());
    std::vector<ts::Series> datasets;
    datasets.push_back(std::move(first).value());
    datasets.push_back(std::move(second).value());
    dataset_names_ = new std::set<std::string>{datasets[0].name(),
                                               datasets[1].name()};
    exp::RunSuite(datasets, FastOptions());

    // Joining the pool workers (SetDefaultThreads tears the pool down)
    // guarantees every worker-side span has finished before the buffer is
    // uninstalled and snapshotted.
    par::SetDefaultThreads(1);
    obs::SetTraceBuffer(nullptr);
    spans_ = new std::vector<obs::FinishedSpan>(buffer_->Snapshot());
    by_id_ = new std::map<uint64_t, const obs::FinishedSpan*>();
    for (const obs::FinishedSpan& s : *spans_) by_id_->emplace(s.span_id, &s);
  }

  static void TearDownTestSuite() {
    delete by_id_;
    delete spans_;
    delete dataset_names_;
    delete buffer_;
    buffer_ = nullptr;
  }

  // Names along the ancestor chain of `span` (excluding the span itself).
  static std::vector<std::string> AncestorNames(const obs::FinishedSpan& span) {
    std::vector<std::string> names;
    uint64_t parent = span.parent_id;
    while (parent != 0) {
      auto it = by_id_->find(parent);
      if (it == by_id_->end()) {
        ADD_FAILURE() << "dangling parent id " << parent << " from "
                      << span.name;
        break;
      }
      names.emplace_back(it->second->name);
      parent = it->second->parent_id;
    }
    return names;
  }

  static size_t CountByName(const char* name) {
    size_t n = 0;
    for (const obs::FinishedSpan& s : *spans_) {
      if (std::strcmp(s.name, name) == 0) ++n;
    }
    return n;
  }

  static obs::TraceBuffer* buffer_;
  static std::vector<obs::FinishedSpan>* spans_;
  static std::map<uint64_t, const obs::FinishedSpan*>* by_id_;
  static std::set<std::string>* dataset_names_;
};

obs::TraceBuffer* TraceIntegrationTest::buffer_ = nullptr;
std::vector<obs::FinishedSpan>* TraceIntegrationTest::spans_ = nullptr;
std::map<uint64_t, const obs::FinishedSpan*>* TraceIntegrationTest::by_id_ =
    nullptr;
std::set<std::string>* TraceIntegrationTest::dataset_names_ = nullptr;

TEST_F(TraceIntegrationTest, SpanInventoryMatchesTheRunShape) {
  EXPECT_EQ(CountByName("suite_run"), 1u);
  EXPECT_EQ(CountByName("dataset_run"), 2u);
  EXPECT_EQ(CountByName("pool_prepare"), 2u);
  EXPECT_EQ(CountByName("pool_fit"), 2u);
  EXPECT_EQ(CountByName("train"), 2u);       // one EA-DRL Initialize per dataset
  EXPECT_EQ(CountByName("restart"), 4u);     // 2 restarts x 2 datasets
  EXPECT_GE(CountByName("episode"), 4u);
  EXPECT_GE(CountByName("method_run"), 22u);  // 11 combiners x 2 datasets
  EXPECT_GE(CountByName("model_fit"), 16u);
  EXPECT_GE(CountByName("rolling_forecast"), 16u);
  EXPECT_GE(CountByName("ddpg_update"), 1u);
  EXPECT_GE(CountByName("par_task"), 4u);
  EXPECT_EQ(buffer_->dropped(), 0u);
  // All names come from the registry.
  for (const obs::FinishedSpan& s : *spans_) {
    EXPECT_TRUE(obs::IsRegisteredSpan(s.name)) << s.name;
  }
}

TEST_F(TraceIntegrationTest, NoDanglingParentsAndParentsStartFirst) {
  for (const obs::FinishedSpan& s : *spans_) {
    if (s.parent_id == 0) continue;
    auto it = by_id_->find(s.parent_id);
    ASSERT_NE(it, by_id_->end()) << s.name << " has a dangling parent";
    const obs::FinishedSpan& parent = *it->second;
    EXPECT_EQ(parent.trace_id, s.trace_id) << s.name;
    // Parents start no later than their children (a small tolerance covers
    // cross-thread steady_clock reads landing within the same microsecond).
    EXPECT_LE(parent.start_us, s.start_us + 1.0) << s.name;
  }
}

TEST_F(TraceIntegrationTest, DatasetRunsCoverBothDatasetsUnderTheSuite) {
  std::set<std::string> seen;
  for (const obs::FinishedSpan& s : *spans_) {
    if (std::strcmp(s.name, "dataset_run") != 0) continue;
    const obs::TelemetryField* dataset = FindAttr(s, "dataset");
    ASSERT_NE(dataset, nullptr);
    seen.insert(dataset->str);
    // dataset_run executes as a pool task submitted by RunSuite: its parent
    // chain is par_task -> suite_run.
    const std::vector<std::string> chain = AncestorNames(s);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0], "par_task");
    EXPECT_EQ(chain[1], "suite_run");
  }
  EXPECT_EQ(seen, *dataset_names_);
}

TEST_F(TraceIntegrationTest, WorkerSideRestartsReachTheirDatasetAncestors) {
  // Restarts run on pool workers; their identity must flow through the
  // TraceParent snapshot so each episode still resolves to its dataset.
  std::set<std::string> datasets_via_restart;
  for (const obs::FinishedSpan& s : *spans_) {
    if (std::strcmp(s.name, "restart") != 0) continue;
    const std::vector<std::string> chain = AncestorNames(s);
    bool found_dataset = false;
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] != "dataset_run") continue;
      found_dataset = true;
      // Recover the dataset attribute from that ancestor.
      uint64_t parent = s.parent_id;
      for (size_t hops = 0; hops < i; ++hops) {
        parent = by_id_->at(parent)->parent_id;
      }
      const obs::TelemetryField* dataset =
          FindAttr(*by_id_->at(parent), "dataset");
      ASSERT_NE(dataset, nullptr);
      datasets_via_restart.insert(dataset->str);
    }
    EXPECT_TRUE(found_dataset) << "restart span not under any dataset_run";
    EXPECT_NE(std::find(chain.begin(), chain.end(), "train"), chain.end());
    EXPECT_NE(std::find(chain.begin(), chain.end(), "suite_run"), chain.end());
  }
  EXPECT_EQ(datasets_via_restart, *dataset_names_);
}

TEST_F(TraceIntegrationTest, EpisodesNestInRestartsAndUpdatesInEpisodes) {
  for (const obs::FinishedSpan& s : *spans_) {
    if (std::strcmp(s.name, "episode") == 0) {
      ASSERT_NE(s.parent_id, 0u);
      EXPECT_STREQ(by_id_->at(s.parent_id)->name, "restart");
      EXPECT_NE(FindAttr(s, "episode"), nullptr);
      EXPECT_NE(FindAttr(s, "restart"), nullptr);
    }
    if (std::strcmp(s.name, "critic_update") == 0 ||
        std::strcmp(s.name, "actor_update") == 0 ||
        std::strcmp(s.name, "target_sync") == 0) {
      ASSERT_NE(s.parent_id, 0u);
      EXPECT_STREQ(by_id_->at(s.parent_id)->name, "ddpg_update");
    }
  }
}

TEST_F(TraceIntegrationTest, SchedulerSpansCarryQueueAttributes) {
  size_t with_attrs = 0;
  bool saw_own_pop_or_steal = false;
  for (const obs::FinishedSpan& s : *spans_) {
    if (std::strcmp(s.name, "par_task") != 0) continue;
    const obs::TelemetryField* wait = FindAttr(s, "queue_wait_seconds");
    const obs::TelemetryField* stolen = FindAttr(s, "stolen");
    const obs::TelemetryField* worker = FindAttr(s, "worker");
    const obs::TelemetryField* depth = FindAttr(s, "depth");
    ASSERT_NE(wait, nullptr);
    ASSERT_NE(stolen, nullptr);
    ASSERT_NE(worker, nullptr);
    ASSERT_NE(depth, nullptr);
    EXPECT_GE(wait->num, 0.0);
    EXPECT_GE(depth->inum, 1);
    saw_own_pop_or_steal = true;
    ++with_attrs;
  }
  EXPECT_TRUE(saw_own_pop_or_steal);
  EXPECT_GE(with_attrs, 4u);
}

TEST_F(TraceIntegrationTest, ChromeExportRoundTripsThroughTheJsonParser) {
  const std::string exported = buffer_->ToChromeTraceJson();
  auto parsed = json::Parse(exported);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<double> ids;
  size_t x_events = 0;
  for (const json::Value& event : events->AsArray()) {
    if (event.Find("ph")->AsString() != "X") continue;
    ++x_events;
    EXPECT_TRUE(
        obs::IsRegisteredSpan(event.Find("name")->AsString().c_str()));
    const json::Value* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    ids.insert(args->Find("span_id")->AsNumber());
  }
  EXPECT_EQ(x_events, spans_->size());
  for (const json::Value& event : events->AsArray()) {
    if (event.Find("ph")->AsString() != "X") continue;
    const json::Value* parent = event.Find("args")->Find("parent_id");
    if (parent != nullptr) {
      EXPECT_EQ(ids.count(parent->AsNumber()), 1u) << "dangling parent";
    }
  }
}

}  // namespace
}  // namespace eadrl
