#include "ts/embedding.h"

#include <gtest/gtest.h>

namespace eadrl::ts {
namespace {

TEST(EmbeddingTest, ShapesAndValues) {
  math::Vec v{1, 2, 3, 4, 5, 6};
  auto data = DelayEmbed(v, 3);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->x.rows(), 3u);
  EXPECT_EQ(data->x.cols(), 3u);
  EXPECT_EQ(data->y.size(), 3u);
  // Row 0: lags (1,2,3) -> target 4.
  EXPECT_EQ(data->x.Row(0), (math::Vec{1, 2, 3}));
  EXPECT_DOUBLE_EQ(data->y[0], 4.0);
  // Last row: lags (3,4,5) -> target 6.
  EXPECT_EQ(data->x.Row(2), (math::Vec{3, 4, 5}));
  EXPECT_DOUBLE_EQ(data->y[2], 6.0);
}

TEST(EmbeddingTest, PaperDefaultDimensionFive) {
  math::Vec v(50);
  for (size_t i = 0; i < 50; ++i) v[i] = static_cast<double>(i);
  auto data = DelayEmbed(v, 5);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->x.rows(), 45u);
  EXPECT_EQ(data->x.cols(), 5u);
}

TEST(EmbeddingTest, RejectsZeroK) {
  EXPECT_FALSE(DelayEmbed(math::Vec{1, 2, 3}, 0).ok());
}

TEST(EmbeddingTest, RejectsTooShortSeries) {
  EXPECT_FALSE(DelayEmbed(math::Vec{1, 2, 3}, 3).ok());
  EXPECT_TRUE(DelayEmbed(math::Vec{1, 2, 3, 4}, 3).ok());
}

TEST(EmbeddingTest, SeriesOverload) {
  Series s("x", {1, 2, 3, 4});
  auto data = DelayEmbed(s, 2);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->x.rows(), 2u);
}

TEST(EmbeddingTest, LastWindow) {
  math::Vec v{1, 2, 3, 4, 5};
  EXPECT_EQ(LastWindow(v, 3), (math::Vec{3, 4, 5}));
  EXPECT_EQ(LastWindow(v, 5), v);
}

}  // namespace
}  // namespace eadrl::ts
