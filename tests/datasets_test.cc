#include "ts/datasets.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "math/stats.h"

namespace eadrl::ts {
namespace {

TEST(DatasetSpecsTest, TwentyDatasetsWithUniqueIds) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 20u);
  std::set<int> ids;
  for (const auto& spec : specs) ids.insert(spec.id);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), 20);
}

TEST(DatasetSpecsTest, LookupByIdAndNotFound) {
  auto spec = GetDatasetSpec(9);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "Taxi Demand 1");
  EXPECT_FALSE(GetDatasetSpec(0).ok());
  EXPECT_FALSE(GetDatasetSpec(21).ok());
}

TEST(MakeDatasetTest, RespectsRequestedLength) {
  auto s = MakeDataset(1, 42, 300);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 300u);
}

TEST(MakeDatasetTest, DefaultLengthFromSpec) {
  auto s = MakeDataset(5, 42);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), GetDatasetSpec(5)->default_length);
}

TEST(MakeDatasetTest, DeterministicForSeed) {
  auto a = MakeDataset(3, 7, 200);
  auto b = MakeDataset(3, 7, 200);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->values(), b->values());
}

TEST(MakeDatasetTest, DifferentSeedsDiffer) {
  auto a = MakeDataset(3, 7, 200);
  auto b = MakeDataset(3, 8, 200);
  EXPECT_NE(a->values(), b->values());
}

TEST(MakeDatasetTest, RejectsTinyLength) {
  EXPECT_FALSE(MakeDataset(1, 42, 5).ok());
}

TEST(MakeAllDatasetsTest, ProducesAllTwenty) {
  auto all = MakeAllDatasets(42, 100);
  EXPECT_EQ(all.size(), 20u);
  for (const auto& s : all) EXPECT_EQ(s.size(), 100u);
}

// Parameterized structural checks over all dataset ids.
class DatasetProperty : public ::testing::TestWithParam<int> {};

TEST_P(DatasetProperty, FiniteValuesAndNonDegenerate) {
  auto s = MakeDataset(GetParam(), 42, 400);
  ASSERT_TRUE(s.ok());
  for (double v : s->values()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(math::Stddev(s->values()), 0.0);
}

TEST_P(DatasetProperty, SeasonalSeriesShowPeriodicAutocorrelation) {
  auto spec = GetDatasetSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  size_t period = spec->seasonal_period;
  if (period == 0 || period > 170) return;  // aperiodic or annual-scale.
  auto s = MakeDataset(GetParam(), 42, std::max<size_t>(600, period * 6));
  ASSERT_TRUE(s.ok());
  double ac = math::Autocorrelation(s->values(), period);
  EXPECT_GT(ac, 0.1) << "dataset " << GetParam() << " period " << period;
}

INSTANTIATE_TEST_SUITE_P(AllIds, DatasetProperty,
                         ::testing::Range(1, 21));

// Domain-specific invariants.
TEST(DatasetTraitsTest, HumidityBounded) {
  for (int id : {2, 12, 13, 14}) {
    auto s = MakeDataset(id, 1, 500);
    ASSERT_TRUE(s.ok());
    for (double v : s->values()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 100.0);
    }
  }
}

TEST(DatasetTraitsTest, CloudCoverInOktas) {
  auto s = MakeDataset(6, 1, 500);
  for (double v : s->values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 8.0);
  }
}

TEST(DatasetTraitsTest, PrecipitationZeroInflated) {
  auto s = MakeDataset(7, 1, 1000);
  size_t zeros = 0;
  for (double v : s->values()) {
    EXPECT_GE(v, 0.0);
    if (v == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, 300u);  // mostly dry.
}

TEST(DatasetTraitsTest, CountsNonNegative) {
  for (int id : {4, 9, 10}) {
    auto s = MakeDataset(id, 1, 500);
    for (double v : s->values()) {
      EXPECT_GE(v, 0.0);
      EXPECT_DOUBLE_EQ(v, std::round(v));  // counts are integers.
    }
  }
}

TEST(DatasetTraitsTest, StockIndicesPositiveAndRandomWalkLike) {
  for (int id : {18, 19, 20}) {
    auto s = MakeDataset(id, 1, 500);
    for (double v : s->values()) EXPECT_GT(v, 0.0);
    // A random walk has near-unit lag-1 autocorrelation.
    EXPECT_GT(math::Autocorrelation(s->values(), 1), 0.9);
  }
}

TEST(DatasetTraitsTest, SolarRadiationZeroAtNight) {
  auto s = MakeDataset(8, 1, 480);
  size_t zeros = 0;
  for (double v : s->values()) {
    EXPECT_GE(v, 0.0);
    if (v == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, 100u);  // roughly half the hours are night.
}

}  // namespace
}  // namespace eadrl::ts
