// Batched-vs-serial parity for the serving layer: a multi-tenant replay
// through ForecastService — requests coalesced into cross-tenant waves, one
// batched actor pass per policy group — must be BIT-IDENTICAL to evaluating
// each tenant serially on its own EadrlCombiner. This is the end-to-end form
// of the PR-7 ActBatch row guarantee: batching is a scheduling decision, not
// a numeric one. Comparisons use EXPECT_EQ (exact ==), not the 4-ULP
// EXPECT_DOUBLE_EQ.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/eadrl.h"
#include "exp/experiment.h"
#include "math/vec.h"
#include "serve/service.h"
#include "ts/datasets.h"
#include "ts/scaler.h"

namespace eadrl {
namespace {

struct Trained {
  exp::PoolRun pool;
  core::EadrlConfig config;
  std::string policy_path;
};

const Trained& GetTrained() {
  static Trained* trained = [] {
    auto* t = new Trained;
    auto series = ts::MakeDataset(2, 42, 160);
    EXPECT_TRUE(series.ok());
    exp::ExperimentOptions opt;
    opt.seed = 42;
    opt.pool.fast_mode = true;
    opt.pool.nn_epochs = 2;
    opt.eadrl.max_episodes = 2;
    opt.eadrl.restarts = 1;
    t->pool = exp::PreparePool(*series, opt);
    t->config = opt.eadrl;
    core::EadrlCombiner combiner(opt.eadrl);
    EXPECT_TRUE(combiner.Initialize(t->pool.val_preds, t->pool.val_actuals).ok());
    t->policy_path = ::testing::TempDir() + "serve_parity_policy.eadrl";
    EXPECT_TRUE(combiner.SavePolicy(t->policy_path).ok());
    return t;
  }();
  return *trained;
}

/// A fresh combiner restored from the shared saved policy: identical actor
/// weights AND identical initial online window.
std::unique_ptr<core::EadrlCombiner> NewCombiner() {
  auto combiner = std::make_unique<core::EadrlCombiner>(GetTrained().config);
  EXPECT_TRUE(combiner->LoadPolicy(GetTrained().policy_path).ok());
  return combiner;
}

math::Vec Preds(size_t step) {
  const auto& pool = GetTrained().pool;
  return pool.test_preds.Row(step % pool.test_preds.rows());
}

double Actual(size_t step) {
  const auto& pool = GetTrained().pool;
  return pool.test_actuals[step % pool.test_actuals.size()];
}

TEST(ServeParityTest, BatchedReplayMatchesSerialReferenceBitExact) {
  constexpr size_t kTenants = 7;
  constexpr size_t kRounds = 12;

  serve::ServeConfig config;
  config.manual_drain = true;
  config.max_batch = 64;
  // PR 10: run with the full observability stack live — SLO tracking with a
  // deliberately impossible threshold (every predict classified bad, breach
  // edges firing mid-replay) and per-tenant/per-policy drill-down with a cap
  // below kTenants (overflow path active). Instrumentation sits outside the
  // numeric path, so parity must remain bit-exact regardless.
  config.windowed_stats = true;
  config.slo.enabled = true;
  config.slo.latency_threshold_seconds = 1e-12;
  config.tenant_drilldown = 3;
  config.policy_drilldown = 2;
  serve::ForecastService service(config);
  // Two registered policies (same weights, separate agent workspaces):
  // waves must group rows per policy, so every wave here runs two batched
  // actor passes and parity covers the grouping path too.
  const size_t policy_a = service.RegisterPolicy(NewCombiner());
  const size_t policy_b = service.RegisterPolicy(NewCombiner());

  std::vector<ts::StandardScaler> scalers;
  std::vector<bool> scaled;
  std::vector<std::string> tenants;
  for (size_t t = 0; t < kTenants; ++t) {
    tenants.push_back("tenant-" + std::to_string(t));
    scaled.push_back(t % 2 == 1);
    scalers.push_back(ts::StandardScaler::FromMoments(
        10.0 * static_cast<double>(t) - 5.0,
        1.0 + 0.25 * static_cast<double>(t)));
    const size_t policy_id = t < 4 ? policy_a : policy_b;
    ASSERT_TRUE(service
                    .CreateSession(tenants[t], policy_id,
                                   scaled[t] ? &scalers[t] : nullptr)
                    .ok());
  }

  // Replay: per round every tenant enqueues one or (every third round) two
  // predicts before a single drain — so waves carry up to kTenants rows and
  // double-enqueue rounds split into two full waves, varying occupancy.
  // Observes interleave to prove drift tracking never perturbs predictions.
  std::vector<std::vector<double>> served(kTenants);
  size_t failures = 0;
  auto done_for = [&served, &failures](size_t t) {
    return [&served, &failures, t](StatusOr<double> result) {
      if (!result.ok()) {
        ++failures;
        return;
      }
      served[t].push_back(*result);
    };
  };
  size_t step = 0;
  std::vector<size_t> steps_per_tenant(kTenants, 0);
  for (size_t round = 0; round < kRounds; ++round) {
    const size_t repeats = round % 3 == 2 ? 2 : 1;
    for (size_t rep = 0; rep < repeats; ++rep) {
      for (size_t t = 0; t < kTenants; ++t) {
        ASSERT_TRUE(
            service
                .PredictAsync(tenants[t], Preds(step + t * 31), done_for(t))
                .ok());
      }
      ++step;
      for (size_t t = 0; t < kTenants; ++t) ++steps_per_tenant[t];
    }
    if (round % 2 == 1) {
      for (size_t t = 0; t < kTenants; ++t) {
        ASSERT_TRUE(
            service.ObserveActualAsync(tenants[t], Actual(round + t)).ok());
      }
    }
    while (service.DrainOnce()) {
    }
  }
  ASSERT_EQ(failures, 0u);

  // Occupancy sanity: this replay actually exercised cross-tenant batching.
  const serve::ServeStats stats = service.Stats();
  EXPECT_GT(stats.MeanActBatchRows(), 1.0);
  EXPECT_GE(stats.act_batches, 2u * kRounds);  // two policy groups per wave.

  // The instrumentation was genuinely live, not just configured: the
  // impossible latency SLO breached and the capped drill-down overflowed.
  ASSERT_NE(service.slo_tracker(), nullptr);
  EXPECT_GE(service.slo_tracker()->Report().TotalBreaches(), 1u);
  ASSERT_NE(service.tenant_drilldown(), nullptr);
  EXPECT_LE(service.tenant_drilldown()->TrackedLabels(), 3u);
  EXPECT_GT(service.tenant_drilldown()->Overflow(), 0u);

  // Serial reference: one private combiner per tenant, the exact same input
  // sequence, scaling applied with the same StandardScaler ops the service
  // uses (Transform in, Inverse out).
  for (size_t t = 0; t < kTenants; ++t) {
    auto reference = NewCombiner();
    ASSERT_EQ(served[t].size(), steps_per_tenant[t]);
    size_t ref_step = 0;
    for (size_t round = 0; round < kRounds; ++round) {
      const size_t repeats = round % 3 == 2 ? 2 : 1;
      for (size_t rep = 0; rep < repeats; ++rep) {
        const math::Vec input = Preds(ref_step + t * 31);
        double expected;
        if (scaled[t]) {
          expected =
              scalers[t].Inverse(reference->Predict(scalers[t].Transform(input)));
        } else {
          expected = reference->Predict(input);
        }
        EXPECT_EQ(served[t][ref_step], expected)
            << "tenant " << t << " step " << ref_step
            << ": batched serving diverged from serial evaluation";
        ++ref_step;
      }
    }
  }
}

}  // namespace
}  // namespace eadrl
