// MetricsExporter (src/obs/exporter.h): atomic-rename snapshot writes (no
// .tmp residue, always a complete document), format selection by path,
// section rendering in both formats, the on-export hook, periodic background
// exports, and the final flush on Stop.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/exporter.h"
#include "obs/metrics.h"

namespace eadrl::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

TEST(ExporterTest, FormatForPath) {
  EXPECT_EQ(MetricsExporter::FormatForPath("out.json"),
            MetricsExporter::Format::kJson);
  EXPECT_EQ(MetricsExporter::FormatForPath("out.prom"),
            MetricsExporter::Format::kPrometheus);
  EXPECT_EQ(MetricsExporter::FormatForPath("metrics"),
            MetricsExporter::Format::kPrometheus);
}

TEST(ExporterTest, ExportOnceWritesAtomicallyNoTmpResidue) {
  const std::string path = ::testing::TempDir() + "/exporter_once.json";
  std::remove(path.c_str());
  MetricRegistry registry;
  registry.GetCounter("exporter_test_total")->Inc(7.0);

  MetricsExporter::Options options;
  options.path = path;
  options.registry = &registry;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.ExportOnce());
  EXPECT_EQ(exporter.exports(), 1u);
  EXPECT_EQ(exporter.failures(), 0u);
  EXPECT_FALSE(FileExists(path + ".tmp"));  // renamed away, never left.

  auto parsed = json::Parse(ReadFile(path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& root = parsed.value();
  ASSERT_NE(root.Find("schema"), nullptr);
  EXPECT_EQ(root.Find("schema")->AsString().rfind("eadrl-metrics-", 0), 0u);
  ASSERT_NE(root.Find("sequence"), nullptr);
  ASSERT_NE(root.Find("unix_seconds"), nullptr);
  const json::Value* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->Find("exporter_test_total"), nullptr);
  std::remove(path.c_str());
}

TEST(ExporterTest, SectionsRenderInBothFormats) {
  MetricsExporter::Options options;
  options.path = "unused.prom";
  MetricsExporter exporter(options);
  exporter.AddSection(
      {"demo", [] { return std::string("{\"answer\":42}"); },
       [](std::string* out) {
         out->append("# TYPE demo_answer gauge\ndemo_answer 42\n");
       }});

  const std::string js =
      exporter.RenderSnapshot(MetricsExporter::Format::kJson);
  auto parsed = json::Parse(js);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* sections = parsed.value().Find("sections");
  ASSERT_NE(sections, nullptr);
  const json::Value* demo = sections->Find("demo");
  ASSERT_NE(demo, nullptr);
  ASSERT_NE(demo->Find("answer"), nullptr);
  EXPECT_DOUBLE_EQ(demo->Find("answer")->AsNumber(), 42.0);

  const std::string prom =
      exporter.RenderSnapshot(MetricsExporter::Format::kPrometheus);
  EXPECT_NE(prom.find("demo_answer 42"), std::string::npos);
}

TEST(ExporterTest, OnExportHookRunsPerExport) {
  const std::string path = ::testing::TempDir() + "/exporter_hook.prom";
  MetricsExporter::Options options;
  options.path = path;
  MetricsExporter exporter(options);
  int hook_runs = 0;
  exporter.SetOnExport([&hook_runs] { ++hook_runs; });
  exporter.AddSection({"s", nullptr, [](std::string* out) {
                         out->append("# TYPE s gauge\ns 1\n");
                       }});
  ASSERT_TRUE(exporter.ExportOnce());
  ASSERT_TRUE(exporter.ExportOnce());
  EXPECT_EQ(hook_runs, 2);
  std::remove(path.c_str());
}

TEST(ExporterTest, BackgroundThreadExportsPeriodicallyAndFlushesOnStop) {
  const std::string path = ::testing::TempDir() + "/exporter_periodic.json";
  std::remove(path.c_str());
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("periodic_total");

  MetricsExporter::Options options;
  options.path = path;
  options.interval_seconds = 0.02;
  options.registry = &registry;
  MetricsExporter exporter(options);
  exporter.Start();
  // Let several intervals elapse while the metric moves.
  for (int i = 0; i < 10; ++i) {
    counter->Inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  exporter.Stop();
  const uint64_t exports = exporter.exports();
  EXPECT_GE(exports, 2u);  // several ticks plus the final flush.
  EXPECT_EQ(exporter.failures(), 0u);
  // Stop is idempotent and the final document reflects final totals.
  exporter.Stop();
  EXPECT_EQ(exporter.exports(), exports);

  auto parsed = json::Parse(ReadFile(path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* metrics = parsed.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* family = metrics->Find("periodic_total");
  ASSERT_NE(family, nullptr);
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(ExporterTest, UnwritablePathCountsFailures) {
  MetricsExporter::Options options;
  options.path = "/nonexistent-dir-for-sure/metrics.prom";
  MetricsExporter exporter(options);
  exporter.AddSection({"s", nullptr, [](std::string* out) {
                         out->append("# TYPE s gauge\ns 1\n");
                       }});
  EXPECT_FALSE(exporter.ExportOnce());
  EXPECT_EQ(exporter.failures(), 1u);
  EXPECT_EQ(exporter.exports(), 0u);
}

}  // namespace
}  // namespace eadrl::obs
