#include "rl/ou_noise.h"

#include <cmath>

#include <gtest/gtest.h>

namespace eadrl::rl {
namespace {

TEST(OuNoiseTest, StartsAtMean) {
  OuNoise noise(3, 0.15, 0.2, 1.5);
  Rng rng(1);
  noise.Reset();
  // Before sampling, the state should be the mean (verified via Reset then
  // checking the first sample stays near it for tiny sigma).
  OuNoise quiet(2, 0.15, 1e-9, 0.0);
  const math::Vec& s = quiet.Sample(rng);
  for (double v : s) EXPECT_NEAR(v, 0.0, 1e-6);
}

TEST(OuNoiseTest, MeanRevertsAfterExcursion) {
  // Run with noise to push the state away, then switch sigma to zero: the
  // state must decay monotonically back toward the mean.
  OuNoise noise(1, 0.2, 0.8, 0.0);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) noise.Sample(rng);
  noise.set_sigma(0.0);
  double prev = std::fabs(noise.Sample(rng)[0]);
  for (int i = 0; i < 30; ++i) {
    double cur = std::fabs(noise.Sample(rng)[0]);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
  EXPECT_LT(prev, 0.01);
}

TEST(OuNoiseTest, SamplesAreCorrelated) {
  OuNoise noise(1, 0.05, 0.1, 0.0);
  Rng rng(3);
  // Successive samples of an OU process differ by small steps.
  double prev = noise.Sample(rng)[0];
  double max_step = 0.0;
  for (int i = 0; i < 200; ++i) {
    double cur = noise.Sample(rng)[0];
    max_step = std::max(max_step, std::fabs(cur - prev));
    prev = cur;
  }
  EXPECT_LT(max_step, 1.0);
}

TEST(OuNoiseTest, LongRunVarianceBounded) {
  OuNoise noise(1, 0.15, 0.2, 0.0);
  Rng rng(4);
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = noise.Sample(rng)[0];
    sq += v * v;
  }
  // Stationary variance of discrete OU ~= sigma^2 / (2 theta - theta^2).
  double expected = 0.04 / (2 * 0.15 - 0.15 * 0.15);
  EXPECT_NEAR(sq / n, expected, expected * 0.3);
}

TEST(OuNoiseTest, ResetReturnsToMean) {
  OuNoise noise(2, 0.15, 0.5, 0.0);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) noise.Sample(rng);
  noise.Reset();
  noise.set_sigma(1e-12);
  const math::Vec& s = noise.Sample(rng);
  for (double v : s) EXPECT_NEAR(v, 0.0, 1e-6);
}

TEST(OuNoiseTest, SigmaDecayReducesSpread) {
  OuNoise noise(1, 0.15, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(noise.sigma(), 0.5);
  noise.set_sigma(0.5 * 0.9);
  EXPECT_DOUBLE_EQ(noise.sigma(), 0.45);
}

}  // namespace
}  // namespace eadrl::rl
