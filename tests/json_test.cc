#include "common/json.h"

#include <string>

#include <gtest/gtest.h>

namespace eadrl::json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("3.5")->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(Parse("-2e3")->AsNumber(), -2000.0);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructure) {
  auto parsed = Parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(parsed.ok());
  const Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const Value* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[0].AsNumber(), 1.0);
  const Value* b = a->AsArray()[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->AsBool());
  EXPECT_EQ(root.Find("c")->AsString(), "x");
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonTest, DecodesStringEscapes) {
  auto parsed = Parse(R"("a\"b\\c\nd\teAé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\nd\teA\xc3\xa9");
}

TEST(JsonTest, DecodesSurrogatePairs) {
  auto parsed = Parse(R"("😀")");  // U+1F600
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("01").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("nul").ok());
  EXPECT_FALSE(Parse("1 trailing").ok());
  // A lone surrogate half is not a valid escape sequence.
  EXPECT_FALSE(Parse(R"("\ud83d")").ok());
}

TEST(JsonTest, ErrorsCarryAByteOffset) {
  auto parsed = Parse("[1, x]");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("offset"), std::string::npos);
}

TEST(JsonTest, RejectsPathologicalNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonTest, DuplicateKeysKeptAndFindReturnsFirst) {
  auto parsed = Parse(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsObject().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->Find("k")->AsNumber(), 1.0);
}

}  // namespace
}  // namespace eadrl::json
