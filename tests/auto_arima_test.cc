#include "models/auto_arima.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/forecaster.h"

namespace eadrl::models {
namespace {

TEST(AutoArimaTest, PrefersDifferencingForTrend) {
  Rng rng(1);
  math::Vec v(500);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = 0.4 * static_cast<double>(t) + rng.Normal(0, 0.5);
  }
  auto result = AutoArima(ts::Series("trend", std::move(v)));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->d, 1u);
  EXPECT_TRUE(result->model != nullptr);
}

TEST(AutoArimaTest, StationaryArPrefersNoDifferencing) {
  Rng rng(2);
  math::Vec v(800);
  double x = 0.0;
  for (double& val : v) {
    x = 0.7 * x + rng.Normal(0, 1);
    val = x;
  }
  auto result = AutoArima(ts::Series("ar1", std::move(v)));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->d, 0u);
  EXPECT_GE(result->p, 1u);
}

TEST(AutoArimaTest, SelectedModelForecastsFinite) {
  Rng rng(3);
  math::Vec v(300);
  for (double& val : v) val = 5.0 + rng.Normal(0, 1);
  auto result = AutoArima(ts::Series("noise", std::move(v)));
  ASSERT_TRUE(result.ok());
  double p = result->model->PredictNext();
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_NEAR(p, 5.0, 1.5);
  EXPECT_GT(result->holdout_rmse, 0.0);
}

TEST(AutoArimaTest, RejectsShortSeriesAndBadOptions) {
  math::Vec v(30, 1.0);
  EXPECT_FALSE(AutoArima(ts::Series("short", std::move(v))).ok());

  Rng rng(4);
  math::Vec v2(200);
  for (double& val : v2) val = rng.Normal(0, 1);
  AutoArimaOptions bad;
  bad.holdout_ratio = 0.9;
  EXPECT_FALSE(AutoArima(ts::Series("x", std::move(v2)), bad).ok());
}

}  // namespace
}  // namespace eadrl::models
