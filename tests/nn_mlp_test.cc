#include "nn/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/param.h"

namespace eadrl::nn {
namespace {

TEST(MlpTest, ParameterCount) {
  Rng rng(1);
  Mlp net({3, 5, 2}, Activation::kTanh, Activation::kIdentity, rng);
  // Two dense layers -> 4 params (W, b each).
  EXPECT_EQ(net.Params().size(), 4u);
  EXPECT_EQ(net.in_dim(), 3u);
  EXPECT_EQ(net.out_dim(), 2u);
}

TEST(MlpTest, GradCheckTwoHiddenLayers) {
  Rng rng(3);
  Mlp net({2, 4, 3, 1}, Activation::kTanh, Activation::kIdentity, rng);
  math::Vec x{0.7, -0.3};
  math::Vec target{0.25};

  auto loss_value = [&]() {
    return MseLoss(net.Forward(x), target).value;
  };

  net.Forward(x);
  LossResult loss = MseLoss(net.Forward(x), target);
  ZeroGrads(net.Params());
  net.Backward(loss.grad);

  const double eps = 1e-6;
  for (Param* p : net.Params()) {
    for (size_t i = 0; i < p->value.data().size(); ++i) {
      double orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      double up = loss_value();
      p->value.data()[i] = orig - eps;
      double down = loss_value();
      p->value.data()[i] = orig;
      EXPECT_NEAR(p->grad.data()[i], (up - down) / (2.0 * eps), 1e-5);
    }
  }
}

TEST(MlpTest, LearnsNonlinearFunction) {
  // Fit y = x1 * x2 on [-1,1]^2 — requires the hidden layer.
  Rng rng(5);
  Mlp net({2, 16, 1}, Activation::kTanh, Activation::kIdentity, rng);
  Adam opt(0.01);
  opt.Register(net.Params());

  Rng data_rng(11);
  double final_loss = 0.0;
  for (int step = 0; step < 4000; ++step) {
    math::Vec x{data_rng.Uniform(-1, 1), data_rng.Uniform(-1, 1)};
    math::Vec target{x[0] * x[1]};
    LossResult loss = MseLoss(net.Forward(x), target);
    net.Backward(loss.grad);
    opt.StepAndZero();
    final_loss = 0.99 * final_loss + 0.01 * loss.value;
  }
  EXPECT_LT(final_loss, 0.01);
}

TEST(MlpTest, ReinitOutputUniformBoundsWeights) {
  Rng rng(9);
  Mlp net({2, 8, 3}, Activation::kRelu, Activation::kIdentity, rng);
  net.ReinitOutputUniform(1e-3, rng);
  auto params = net.Params();
  // Last two params belong to the output layer.
  for (size_t p = params.size() - 2; p < params.size(); ++p) {
    for (double v : params[p]->value.data()) {
      EXPECT_LE(std::fabs(v), 1e-3);
    }
  }
}

}  // namespace
}  // namespace eadrl::nn
