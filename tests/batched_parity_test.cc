// Batched-vs-scalar parity: the batch-major kernels must reproduce the
// per-sample reference paths bit for bit (modulo exact-zero signs, which
// EXPECT_DOUBLE_EQ already treats as equal). Runs with the chk contract
// layer forced on so every shape/finite/simplex contract is live while the
// two paths are compared.
#define EADRL_CHK_FORCE_ON 1

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "chk/chk.h"
#include "common/rng.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "models/forecaster.h"
#include "models/nn_regressors.h"
#include "models/regression_forecaster.h"
#include "nn/dense.h"
#include "nn/mlp.h"
#include "rl/ddpg.h"
#include "ts/series.h"

namespace eadrl {
namespace {

math::Matrix RandomBatch(size_t rows, size_t cols, Rng* rng) {
  math::Matrix m(rows, cols);
  for (double& v : m.data()) v = rng->Uniform(-2.0, 2.0);
  return m;
}

constexpr nn::Activation kActs[] = {
    nn::Activation::kIdentity, nn::Activation::kRelu, nn::Activation::kTanh,
    nn::Activation::kSigmoid};

// Dense: ForwardBatch row b == Forward(row b), and one BackwardBatch
// accumulates exactly what B scalar Backward calls accumulate.
TEST(BatchedParityTest, DenseForwardBackwardMatchesScalar) {
  Rng rng(11);
  for (nn::Activation act : kActs) {
    for (size_t batch : {1u, 2u, 5u, 16u}) {
      const size_t in = 3 + static_cast<size_t>(rng.Uniform(0, 5));
      const size_t out = 2 + static_cast<size_t>(rng.Uniform(0, 6));
      Rng init_a(77);
      Rng init_b(77);
      nn::Dense scalar(in, out, act, init_a);
      nn::Dense batched(in, out, act, init_b);

      const math::Matrix x = RandomBatch(batch, in, &rng);
      const math::Matrix g = RandomBatch(batch, out, &rng);

      math::Matrix batched_out;
      batched.ForwardBatch(x, &batched_out, /*train=*/true);
      std::vector<math::Vec> scalar_dx;
      for (size_t b = 0; b < batch; ++b) {
        math::Vec y = scalar.Forward(x.Row(b));
        for (size_t j = 0; j < out; ++j) {
          EXPECT_DOUBLE_EQ(batched_out(b, j), y[j]);
        }
        scalar_dx.push_back(scalar.Backward(g.Row(b)));
      }
      math::Matrix batched_dx;
      batched.BackwardBatch(g, &batched_dx);
      for (size_t b = 0; b < batch; ++b) {
        for (size_t j = 0; j < in; ++j) {
          EXPECT_DOUBLE_EQ(batched_dx(b, j), scalar_dx[b][j]);
        }
      }
      auto sp = scalar.Params();
      auto bp = batched.Params();
      for (size_t p = 0; p < sp.size(); ++p) {
        ASSERT_EQ(sp[p]->grad.size(), bp[p]->grad.size());
        for (size_t i = 0; i < sp[p]->grad.size(); ++i) {
          EXPECT_DOUBLE_EQ(bp[p]->grad.data()[i], sp[p]->grad.data()[i])
              << "act=" << static_cast<int>(act) << " batch=" << batch;
        }
      }
    }
  }
}

// Mlp: same equivalence through a stack of layers, including the gradient
// flowing all the way back to the input.
TEST(BatchedParityTest, MlpForwardBackwardMatchesScalar) {
  Rng rng(13);
  for (size_t batch : {1u, 4u, 16u}) {
    Rng init_a(99);
    Rng init_b(99);
    nn::Mlp scalar({6, 16, 16, 3}, nn::Activation::kRelu,
                   nn::Activation::kIdentity, init_a);
    nn::Mlp batched({6, 16, 16, 3}, nn::Activation::kRelu,
                    nn::Activation::kIdentity, init_b);
    const math::Matrix x = RandomBatch(batch, 6, &rng);
    const math::Matrix g = RandomBatch(batch, 3, &rng);

    const math::Matrix& batched_out = batched.ForwardBatch(x, /*train=*/true);
    std::vector<math::Vec> scalar_dx;
    for (size_t b = 0; b < batch; ++b) {
      math::Vec y = scalar.Forward(x.Row(b));
      for (size_t j = 0; j < 3u; ++j) EXPECT_DOUBLE_EQ(batched_out(b, j), y[j]);
      scalar_dx.push_back(scalar.Backward(g.Row(b)));
    }
    const math::Matrix& batched_dx = batched.BackwardBatch(g);
    for (size_t b = 0; b < batch; ++b) {
      for (size_t j = 0; j < 6u; ++j) {
        EXPECT_DOUBLE_EQ(batched_dx(b, j), scalar_dx[b][j]);
      }
    }
    auto sp = scalar.Params();
    auto bp = batched.Params();
    for (size_t p = 0; p < sp.size(); ++p) {
      for (size_t i = 0; i < sp[p]->grad.size(); ++i) {
        EXPECT_DOUBLE_EQ(bp[p]->grad.data()[i], sp[p]->grad.data()[i]);
      }
    }
  }
}

// Predict (no-grad) and ForwardBatch(train=false) also agree with Forward.
TEST(BatchedParityTest, InferencePathsMatchTrainForward) {
  Rng rng(17);
  Rng init(123);
  nn::Mlp net({5, 12, 2}, nn::Activation::kTanh, nn::Activation::kIdentity,
              init);
  const math::Matrix x = RandomBatch(8, 5, &rng);
  const math::Matrix infer = net.ForwardBatch(x, /*train=*/false);
  for (size_t b = 0; b < 8u; ++b) {
    const math::Vec row = x.Row(b);
    const math::Vec& pred = net.Predict(row);
    math::Vec fwd = net.Forward(row);
    for (size_t j = 0; j < 2u; ++j) {
      EXPECT_DOUBLE_EQ(pred[j], fwd[j]);
      EXPECT_DOUBLE_EQ(infer(b, j), fwd[j]);
    }
  }
}

std::vector<rl::Transition> MakeDdpgBatch(size_t n, size_t state_dim,
                                          size_t action_dim, Rng* rng) {
  std::vector<rl::Transition> batch;
  for (size_t i = 0; i < n; ++i) {
    rl::Transition t;
    for (size_t j = 0; j < state_dim; ++j)
      t.state.push_back(rng->Uniform(-1.0, 1.0));
    math::Vec logits;
    for (size_t j = 0; j < action_dim; ++j)
      logits.push_back(rng->Uniform(-1.0, 1.0));
    t.action = math::Softmax(logits);
    t.reward = rng->Uniform(0.0, 2.0);
    for (size_t j = 0; j < state_dim; ++j)
      t.next_state.push_back(rng->Uniform(-1.0, 1.0));
    t.terminal = (i % 5 == 4);
    batch.push_back(std::move(t));
  }
  return batch;
}

class DdpgUpdateParity : public ::testing::TestWithParam<rl::CriticForm> {};

// One Update on two same-seed agents — batched vs scalar path — must leave
// identical weights, stats and Q-values, for both critic forms.
TEST_P(DdpgUpdateParity, SingleUpdateEquivalence) {
  rl::DdpgConfig cfg;
  cfg.state_dim = 4;
  cfg.action_dim = 6;
  cfg.actor_hidden = {16};
  cfg.critic_hidden = {16};
  cfg.critic_form = GetParam();
  cfg.seed = 5;

  cfg.batched_update = true;
  rl::DdpgAgent batched(cfg);
  cfg.batched_update = false;
  rl::DdpgAgent scalar(cfg);

  Rng rng(21);
  const auto batch = MakeDdpgBatch(16, cfg.state_dim, cfg.action_dim, &rng);
  for (int step = 0; step < 3; ++step) {
    const double loss_b = batched.Update(batch);
    const double loss_s = scalar.Update(batch);
    EXPECT_DOUBLE_EQ(loss_b, loss_s);
    EXPECT_DOUBLE_EQ(batched.last_update_stats().mean_abs_q,
                     scalar.last_update_stats().mean_abs_q);
    EXPECT_DOUBLE_EQ(batched.last_update_stats().action_entropy,
                     scalar.last_update_stats().action_entropy);
    EXPECT_DOUBLE_EQ(batched.last_update_stats().actor_grad_norm,
                     scalar.last_update_stats().actor_grad_norm);
  }
  const auto wb = batched.ActorWeights();
  const auto ws = scalar.ActorWeights();
  ASSERT_EQ(wb.size(), ws.size());
  for (size_t m = 0; m < wb.size(); ++m) {
    ASSERT_EQ(wb[m].size(), ws[m].size());
    for (size_t i = 0; i < wb[m].size(); ++i) {
      EXPECT_DOUBLE_EQ(wb[m].data()[i], ws[m].data()[i]);
    }
  }
  const math::Vec probe_s = batch[0].state;
  const math::Vec act_b = batched.Act(probe_s);
  const math::Vec act_s = scalar.Act(probe_s);
  for (size_t j = 0; j < cfg.action_dim; ++j) {
    EXPECT_DOUBLE_EQ(act_b[j], act_s[j]);
  }
  EXPECT_DOUBLE_EQ(batched.QValue(probe_s, act_b),
                   scalar.QValue(probe_s, act_s));
}

INSTANTIATE_TEST_SUITE_P(CriticForms, DdpgUpdateParity,
                         ::testing::Values(rl::CriticForm::kLinearInAction,
                                           rl::CriticForm::kMonolithic));

// ActBatch row b == Act(row b).
TEST(BatchedParityTest, ActBatchMatchesScalarAct) {
  rl::DdpgConfig cfg;
  cfg.state_dim = 4;
  cfg.action_dim = 6;
  rl::DdpgAgent agent(cfg);
  Rng rng(31);
  const math::Matrix states = RandomBatch(7, 4, &rng);
  const math::Matrix batched = agent.ActBatch(states);
  for (size_t b = 0; b < 7u; ++b) {
    const math::Vec want = agent.Act(states.Row(b));
    for (size_t j = 0; j < 6u; ++j) EXPECT_DOUBLE_EQ(batched(b, j), want[j]);
  }
}

// The batched rolling fan-out (RegressionForecaster::TryRollingForecast over
// MlpRegressor::PredictBatch) equals the scalar PredictNext/Observe walk,
// and leaves the forecaster in the same state.
TEST(BatchedParityTest, RollingForecastMatchesScalarWalk) {
  math::Vec values;
  Rng rng(41);
  for (int t = 0; t < 80; ++t) {
    values.push_back(std::sin(0.2 * t) + 0.1 * rng.Uniform(-1.0, 1.0));
  }
  const ts::Series train("train", math::Vec(values.begin(), values.end() - 20));
  const ts::Series eval("eval", math::Vec(values.end() - 20, values.end()));

  models::NnTrainParams params;
  params.epochs = 4;
  auto make = [&params]() {
    return std::make_unique<models::RegressionForecaster>(
        "mlp", 4,
        std::make_unique<models::MlpRegressor>(std::vector<size_t>{8},
                                               params));
  };
  auto batched = make();
  auto scalar = make();
  ASSERT_TRUE(batched->Fit(train).ok());
  ASSERT_TRUE(scalar->Fit(train).ok());

  const math::Vec batched_preds = models::RollingForecast(batched.get(), eval);
  math::Vec scalar_preds;
  for (size_t t = 0; t < eval.size(); ++t) {
    scalar_preds.push_back(scalar->PredictNext());
    scalar->Observe(eval[t]);
  }
  ASSERT_EQ(batched_preds.size(), scalar_preds.size());
  for (size_t t = 0; t < scalar_preds.size(); ++t) {
    EXPECT_DOUBLE_EQ(batched_preds[t], scalar_preds[t]);
  }
  // Same post-sweep state: the next one-step forecast agrees too.
  EXPECT_DOUBLE_EQ(batched->PredictNext(), scalar->PredictNext());
}

}  // namespace
}  // namespace eadrl
