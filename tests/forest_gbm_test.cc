#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/gbm.h"
#include "models/random_forest.h"

namespace eadrl::models {
namespace {

// Nonlinear target: y = sin(3 x0) + x1^2.
void MakeData(size_t n, uint64_t seed, math::Matrix* x, math::Vec* y) {
  Rng rng(seed);
  *x = math::Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*x)(i, 0) = rng.Uniform(-1, 1);
    (*x)(i, 1) = rng.Uniform(-1, 1);
    (*y)[i] = std::sin(3.0 * (*x)(i, 0)) + (*x)(i, 1) * (*x)(i, 1);
  }
}

double TestMse(const Regressor& model, uint64_t seed) {
  math::Matrix x;
  math::Vec y;
  MakeData(200, seed, &x, &y);
  double mse = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    double d = model.Predict(x.Row(i)) - y[i];
    mse += d * d;
  }
  return mse / static_cast<double>(x.rows());
}

TEST(RandomForestTest, BeatsMeanBaseline) {
  math::Matrix x;
  math::Vec y;
  MakeData(300, 1, &x, &y);
  RandomForestRegressor::Params p;
  p.num_trees = 30;
  p.seed = 7;
  RandomForestRegressor rf(p);
  ASSERT_TRUE(rf.Fit(x, y).ok());
  EXPECT_EQ(rf.num_trees(), 30u);
  // Variance of y is ~0.7; the forest should do much better.
  EXPECT_LT(TestMse(rf, 2), 0.15);
}

TEST(RandomForestTest, DeterministicForSeed) {
  math::Matrix x;
  math::Vec y;
  MakeData(100, 1, &x, &y);
  RandomForestRegressor::Params p;
  p.num_trees = 5;
  p.seed = 9;
  RandomForestRegressor a(p), b(p);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.3, -0.2}), b.Predict({0.3, -0.2}));
}

TEST(RandomForestTest, RejectsEmptyData) {
  RandomForestRegressor rf(RandomForestRegressor::Params{});
  EXPECT_FALSE(rf.Fit(math::Matrix(), math::Vec{}).ok());
}

TEST(GbmTest, BeatsMeanBaseline) {
  math::Matrix x;
  math::Vec y;
  MakeData(300, 3, &x, &y);
  GbmRegressor::Params p;
  p.num_trees = 100;
  p.learning_rate = 0.1;
  p.seed = 5;
  GbmRegressor gbm(p);
  ASSERT_TRUE(gbm.Fit(x, y).ok());
  EXPECT_LT(TestMse(gbm, 4), 0.1);
}

TEST(GbmTest, MoreTreesReduceTrainingError) {
  math::Matrix x;
  math::Vec y;
  MakeData(200, 5, &x, &y);

  auto train_mse = [&](size_t trees) {
    GbmRegressor::Params p;
    p.num_trees = trees;
    p.seed = 1;
    GbmRegressor gbm(p);
    EXPECT_TRUE(gbm.Fit(x, y).ok());
    double mse = 0.0;
    for (size_t i = 0; i < x.rows(); ++i) {
      double d = gbm.Predict(x.Row(i)) - y[i];
      mse += d * d;
    }
    return mse / static_cast<double>(x.rows());
  };

  EXPECT_LT(train_mse(80), train_mse(5));
}

TEST(GbmTest, SubsampleStillLearns) {
  math::Matrix x;
  math::Vec y;
  MakeData(300, 6, &x, &y);
  GbmRegressor::Params p;
  p.num_trees = 100;
  p.subsample = 0.7;
  p.seed = 2;
  GbmRegressor gbm(p);
  ASSERT_TRUE(gbm.Fit(x, y).ok());
  EXPECT_LT(TestMse(gbm, 7), 0.15);
}

TEST(GbmTest, ConstantTargetPredictsConstant) {
  math::Matrix x(50, 2);
  Rng rng(1);
  for (double& v : x.data()) v = rng.Uniform(0, 1);
  math::Vec y(50, 3.3);
  GbmRegressor gbm(GbmRegressor::Params{});
  ASSERT_TRUE(gbm.Fit(x, y).ok());
  EXPECT_NEAR(gbm.Predict({0.5, 0.5}), 3.3, 1e-9);
}

}  // namespace
}  // namespace eadrl::models
