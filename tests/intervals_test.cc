#include "core/intervals.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eadrl::core {
namespace {

TEST(IntervalsTest, RequiresCalibration) {
  EmpiricalIntervals intervals;
  EXPECT_FALSE(intervals.calibrated());
  EXPECT_FALSE(intervals.Interval(0.0, 0.9).ok());
}

TEST(IntervalsTest, SymmetricResidualsGiveSymmetricInterval) {
  EmpiricalIntervals intervals;
  math::Vec residuals;
  for (int i = -50; i <= 50; ++i) residuals.push_back(0.1 * i);
  ASSERT_TRUE(intervals.Calibrate(residuals).ok());
  auto fc = intervals.Interval(10.0, 0.8);
  ASSERT_TRUE(fc.ok());
  EXPECT_DOUBLE_EQ(fc->point, 10.0);
  EXPECT_NEAR(fc->upper - 10.0, 10.0 - fc->lower, 1e-9);
  EXPECT_NEAR(fc->upper, 14.0, 0.2);  // 90th pct of U(-5,5) = 4.
}

TEST(IntervalsTest, BiasedResidualsShiftInterval) {
  EmpiricalIntervals intervals;
  math::Vec residuals(50, 2.0);  // model consistently under-predicts by 2.
  ASSERT_TRUE(intervals.Calibrate(residuals).ok());
  auto fc = intervals.Interval(0.0, 0.5);
  ASSERT_TRUE(fc.ok());
  EXPECT_DOUBLE_EQ(fc->lower, 2.0);
  EXPECT_DOUBLE_EQ(fc->upper, 2.0);
}

TEST(IntervalsTest, WiderCoverageGivesWiderInterval) {
  Rng rng(1);
  math::Vec residuals(500);
  for (double& r : residuals) r = rng.Normal(0, 1);
  EmpiricalIntervals intervals;
  ASSERT_TRUE(intervals.Calibrate(residuals).ok());
  auto narrow = intervals.Interval(0.0, 0.5);
  auto wide = intervals.Interval(0.0, 0.95);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_LT(narrow->upper - narrow->lower, wide->upper - wide->lower);
}

TEST(IntervalsTest, EmpiricalCoverageNearNominal) {
  Rng rng(2);
  math::Vec residuals(2000);
  for (double& r : residuals) r = rng.Normal(0, 1);
  EmpiricalIntervals intervals;
  ASSERT_TRUE(intervals.Calibrate(residuals).ok());

  // Fresh data from the same error distribution.
  math::Vec actuals(2000), predictions(2000);
  for (size_t t = 0; t < actuals.size(); ++t) {
    predictions[t] = 10.0;
    actuals[t] = 10.0 + rng.Normal(0, 1);
  }
  auto coverage = intervals.EmpiricalCoverage(actuals, predictions, 0.9);
  ASSERT_TRUE(coverage.ok());
  EXPECT_NEAR(*coverage, 0.9, 0.03);
}

TEST(IntervalsTest, RejectsBadInputs) {
  EmpiricalIntervals intervals;
  EXPECT_FALSE(intervals.Calibrate(math::Vec(5, 0.0)).ok());
  math::Vec residuals(20, 0.5);
  ASSERT_TRUE(intervals.Calibrate(residuals).ok());
  EXPECT_FALSE(intervals.Interval(0.0, 0.0).ok());
  EXPECT_FALSE(intervals.Interval(0.0, 1.0).ok());
  EXPECT_FALSE(intervals.EmpiricalCoverage({1.0}, {1.0, 2.0}, 0.9).ok());
}

}  // namespace
}  // namespace eadrl::core
