#include "obs/resource.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "par/thread_pool.h"

namespace eadrl::obs {
namespace {

TEST(SampleResources, ReportsALiveProcess) {
  const ResourceSample sample = SampleResources();
  EXPECT_GT(sample.peak_rss_bytes, 0u);
  EXPECT_GT(sample.current_rss_bytes, 0u);
  // No peak >= current assertion: the kernel's high-water mark (ru_maxrss)
  // is only refreshed at accounting points, so statm's live resident count
  // can briefly exceed it.
  EXPECT_GE(sample.user_cpu_seconds + sample.system_cpu_seconds, 0.0);
}

TEST(SampleResources, PeakRssIsMonotoneUnderDeliberateAllocation) {
  const ResourceSample before = SampleResources();
  // Touch every page so the allocation is actually resident, not just
  // reserved address space.
  constexpr size_t kBytes = 48u << 20;
  std::vector<char> ballast(kBytes);
  for (size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 1;
  const ResourceSample during = SampleResources();
  EXPECT_GE(during.peak_rss_bytes, before.peak_rss_bytes);
  // The high-water mark must have seen the ballast (minus a generous
  // allowance for pages the process had already peaked at).
  EXPECT_GE(during.peak_rss_bytes, before.current_rss_bytes + kBytes / 2);
  ballast.clear();
  ballast.shrink_to_fit();
  // Monotone even after the memory is returned: it is a high-water mark.
  const ResourceSample after = SampleResources();
  EXPECT_GE(after.peak_rss_bytes, during.peak_rss_bytes);
}

TEST(AllocCounters, ThreadStatsCountEveryReport) {
  const AllocStats before = ThreadAllocStats();
  CountAlloc(100);
  CountAlloc(28);
  const AllocStats after = ThreadAllocStats();
  EXPECT_EQ(after.count - before.count, 2u);
  EXPECT_EQ(after.bytes - before.bytes, 128u);
}

TEST(AllocCounters, TotalsIncludeExitedThreads) {
  const AllocStats before = TotalAllocStats();
  std::thread worker([] {
    for (int i = 0; i < 5; ++i) CountAlloc(1000);
  });
  worker.join();
  const AllocStats after = TotalAllocStats();
  EXPECT_GE(after.count - before.count, 5u);
  EXPECT_GE(after.bytes - before.bytes, 5000u);
}

TEST(AllocCounters, TotalsCoverLiveThreadsToo) {
  const AllocStats before = TotalAllocStats();
  CountAlloc(64);
  const AllocStats after = TotalAllocStats();
  EXPECT_GE(after.count - before.count, 1u);
  EXPECT_GE(after.bytes - before.bytes, 64u);
}

TEST(UpdateResourceMetrics, PublishesGaugesIntoTheGivenRegistry) {
  MetricRegistry registry;
  CountAlloc(512);
  UpdateResourceMetrics(&registry);
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("eadrl_peak_rss_bytes"), std::string::npos);
  EXPECT_NE(prom.find("eadrl_rss_bytes"), std::string::npos);
  EXPECT_NE(prom.find("eadrl_page_faults{kind=\"minor\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("eadrl_ctx_switches"), std::string::npos);
  EXPECT_NE(prom.find("eadrl_cpu_seconds{mode=\"user\"}"), std::string::npos);
  EXPECT_NE(prom.find("eadrl_alloc_count_total"), std::string::npos);
  EXPECT_NE(prom.find("eadrl_alloc_bytes_total"), std::string::npos);
  EXPECT_GT(registry.GetGauge("eadrl_alloc_bytes_total")->Value(), 0.0);
}

/// Span-attribution tests: arm spans against a local buffer and read the
/// profiler aggregates back via SpanProfileSnapshot.
class SpanAllocAttributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    buffer_ = std::make_unique<TraceBuffer>();
    SetTraceBuffer(buffer_.get());
    ResetSpanProfileForTest();
  }
  void TearDown() override {
    SetTraceBuffer(nullptr);
    ResetSpanProfileForTest();
  }

  static SpanProfileRow RowFor(const std::string& name) {
    for (const SpanProfileRow& row : SpanProfileSnapshot()) {
      if (row.name == name) return row;
    }
    return {};
  }

  std::unique_ptr<TraceBuffer> buffer_;
};

TEST_F(SpanAllocAttributionTest, SelfAllocationsExcludeChildren) {
  {
    Span parent("attr_parent_span");
    CountAlloc(100);
    {
      Span child("attr_child_span");
      CountAlloc(1000);
      CountAlloc(1000);
    }
    CountAlloc(100);
  }
  const SpanProfileRow parent = RowFor("attr_parent_span");
  const SpanProfileRow child = RowFor("attr_child_span");
  EXPECT_EQ(parent.count, 1u);
  EXPECT_EQ(parent.alloc_count, 2u);
  EXPECT_EQ(parent.alloc_bytes, 200u);
  EXPECT_EQ(child.count, 1u);
  EXPECT_EQ(child.alloc_count, 2u);
  EXPECT_EQ(child.alloc_bytes, 2000u);
}

TEST_F(SpanAllocAttributionTest, WorkerSpansOwnPoolTaskAllocations) {
  // Allocations made by a task on a pool worker must land on the span the
  // worker opens, not on the submitting thread's span: the worker's
  // thread-local counters never mix with the submitter's.
  par::ThreadPool pool(2);
  {
    Span submitter("attr_submitter_span");
    par::TaskGroup group(&pool);
    for (int i = 0; i < 4; ++i) {
      group.Run([] {
        Span task("attr_task_span");
        CountAlloc(4096);
      });
    }
    group.Wait();
  }
  const SpanProfileRow task = RowFor("attr_task_span");
  const SpanProfileRow submitter = RowFor("attr_submitter_span");
  EXPECT_EQ(task.count, 4u);
  EXPECT_EQ(task.alloc_count, 4u);
  EXPECT_EQ(task.alloc_bytes, 4u * 4096u);
  EXPECT_EQ(submitter.count, 1u);
  // The submitter itself reported nothing. (A serial pool would run the
  // tasks inline under a ScopedTraceParent mask, which also keeps them off
  // the submitter's self share.)
  EXPECT_EQ(submitter.alloc_count, 0u);
  EXPECT_EQ(submitter.alloc_bytes, 0u);
}

TEST_F(SpanAllocAttributionTest, SerialPoolMasksHelperAllocations) {
  // Thread count 1 = zero workers: Submit runs inline on the caller, where
  // ScopedTraceParent masks the live span. The task's allocations must stay
  // attributed to the task's own span, not leak into the enclosing one.
  par::ThreadPool pool(1);
  {
    Span submitter("attr_serial_outer_span");
    par::TaskGroup group(&pool);
    group.Run([] {
      Span task("attr_serial_task_span");
      CountAlloc(512);
    });
    group.Wait();
  }
  EXPECT_EQ(RowFor("attr_serial_task_span").alloc_bytes, 512u);
  EXPECT_EQ(RowFor("attr_serial_outer_span").alloc_bytes, 0u);
}

TEST_F(SpanAllocAttributionTest, AllocAttrsAppearInFinishedSpans) {
  {
    Span span("attr_export_span");
    CountAlloc(2048);
  }
  SetTraceBuffer(nullptr);
  bool found = false;
  for (const FinishedSpan& span : buffer_->Snapshot()) {
    if (std::string(span.name) != "attr_export_span") continue;
    found = true;
    bool saw_bytes = false;
    for (const TelemetryField& attr : span.attrs) {
      if (std::string(attr.key) == "alloc_bytes") saw_bytes = true;
    }
    EXPECT_TRUE(saw_bytes) << "span should carry alloc attrs";
  }
  EXPECT_TRUE(found);
}

TEST_F(SpanAllocAttributionTest, ProfileReportListsAllocations) {
  {
    Span span("attr_report_span");
    CountAlloc(4096);
  }
  const std::string report = FormatSpanProfileReport();
  EXPECT_NE(report.find("attr_report_span"), std::string::npos);
  EXPECT_NE(report.find("alloc_bytes"), std::string::npos);
  EXPECT_NE(report.find("4096"), std::string::npos);
}

}  // namespace
}  // namespace eadrl::obs
