#include "models/arima.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/forecaster.h"
#include "models/naive.h"
#include "ts/metrics.h"

namespace eadrl::models {
namespace {

ts::Series MakeAr1(size_t n, double phi, double sigma, uint64_t seed) {
  Rng rng(seed);
  math::Vec v(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x = phi * x + rng.Normal(0.0, sigma);
    v[t] = x;
  }
  return ts::Series("ar1", std::move(v));
}

TEST(ArimaTest, NameEncodesOrder) {
  ArimaForecaster model(2, 1, 1);
  EXPECT_EQ(model.name(), "arima(2,1,1)");
}

TEST(ArimaTest, RecoversAr1Coefficient) {
  ts::Series s = MakeAr1(2000, 0.8, 1.0, 1);
  ArimaForecaster model(1, 0, 0);
  ASSERT_TRUE(model.Fit(s).ok());
  EXPECT_NEAR(model.ar_coefficients()[0], 0.8, 0.06);
}

TEST(ArimaTest, RecoversAr2Coefficients) {
  Rng rng(2);
  math::Vec v(3000);
  double x1 = 0.0, x2 = 0.0;
  for (size_t t = 0; t < v.size(); ++t) {
    double x = 0.6 * x1 - 0.3 * x2 + rng.Normal(0, 1);
    v[t] = x;
    x2 = x1;
    x1 = x;
  }
  ArimaForecaster model(2, 0, 0);
  ASSERT_TRUE(model.Fit(ts::Series("ar2", std::move(v))).ok());
  EXPECT_NEAR(model.ar_coefficients()[0], 0.6, 0.08);
  EXPECT_NEAR(model.ar_coefficients()[1], -0.3, 0.08);
}

TEST(ArimaTest, BeatsNaiveOnAr1) {
  ts::Series s = MakeAr1(1200, 0.9, 1.0, 3);
  auto split = ts::SplitTrainTest(s, 0.8);

  ArimaForecaster arima(1, 0, 0);
  ASSERT_TRUE(arima.Fit(split.train).ok());
  math::Vec arima_preds = RollingForecast(&arima, split.test);

  NaiveForecaster naive;
  ASSERT_TRUE(naive.Fit(split.train).ok());
  math::Vec naive_preds = RollingForecast(&naive, split.test);

  // AR(1) optimal predictor phi*x_t strictly beats the random walk.
  EXPECT_LT(ts::Rmse(split.test.values(), arima_preds),
            ts::Rmse(split.test.values(), naive_preds));
}

TEST(ArimaTest, DifferencingHandlesLinearTrend) {
  // x_t = 0.5 t + noise; ARIMA(1,1,0) should track the trend.
  Rng rng(4);
  math::Vec v(600);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = 0.5 * static_cast<double>(t) + rng.Normal(0, 0.5);
  }
  ts::Series s("trend", std::move(v));
  auto split = ts::SplitTrainTest(s, 0.8);

  ArimaForecaster model(1, 1, 0);
  ASSERT_TRUE(model.Fit(split.train).ok());
  math::Vec preds = RollingForecast(&model, split.test);
  // Forecasts should stay close to the trending series, not lag behind it.
  EXPECT_LT(ts::Rmse(split.test.values(), preds), 1.2);
}

TEST(ArimaTest, SecondOrderDifferencing) {
  // Quadratic trend needs d = 2.
  Rng rng(5);
  math::Vec v(500);
  for (size_t t = 0; t < v.size(); ++t) {
    double td = static_cast<double>(t);
    v[t] = 0.01 * td * td + rng.Normal(0, 0.5);
  }
  ts::Series s("quad", std::move(v));
  auto split = ts::SplitTrainTest(s, 0.8);
  ArimaForecaster model(1, 2, 0);
  ASSERT_TRUE(model.Fit(split.train).ok());
  math::Vec preds = RollingForecast(&model, split.test);
  EXPECT_LT(ts::Nrmse(split.test.values(), preds), 0.05);
}

TEST(ArimaTest, MaTermImprovesOnMaProcess) {
  // MA(1): x_t = e_t + 0.7 e_{t-1}.
  Rng rng(6);
  math::Vec v(2000);
  double prev_e = 0.0;
  for (size_t t = 0; t < v.size(); ++t) {
    double e = rng.Normal(0, 1);
    v[t] = e + 0.7 * prev_e;
    prev_e = e;
  }
  ts::Series s("ma1", std::move(v));
  ArimaForecaster model(1, 0, 1);
  ASSERT_TRUE(model.Fit(s).ok());
  // The MA coefficient should be clearly positive.
  EXPECT_GT(model.ma_coefficients()[0], 0.3);
}

TEST(ArimaTest, RejectsShortSeries) {
  ArimaForecaster model(2, 1, 1);
  EXPECT_FALSE(model.Fit(ts::Series("tiny", {1, 2, 3})).ok());
}

TEST(ArimaTest, PredictObserveProtocol) {
  ts::Series s = MakeAr1(500, 0.7, 1.0, 7);
  ArimaForecaster model(1, 0, 0);
  ASSERT_TRUE(model.Fit(s).ok());
  double p1 = model.PredictNext();
  EXPECT_TRUE(std::isfinite(p1));
  model.Observe(1.5);
  double p2 = model.PredictNext();
  EXPECT_TRUE(std::isfinite(p2));
  // After observing 1.5, the AR(1) forecast should be near phi * 1.5.
  EXPECT_NEAR(p2, model.ar_coefficients()[0] * 1.5 + model.intercept(), 0.3);
}

}  // namespace
}  // namespace eadrl::models
