// SLO tracking (src/obs/slo.h): burn-rate math, multi-window breach/recover
// edges driven by an injected fake clock, error-budget accounting, latency
// vs ratio objectives, and the slo_breach / slo_recover telemetry contract
// (registered kinds, exactly one event per edge).

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/window.h"

namespace eadrl::obs {
namespace {

std::atomic<uint64_t> g_now_ns{0};

uint64_t FakeNow() { return g_now_ns.load(std::memory_order_relaxed); }

void SetNowSeconds(double seconds) {
  g_now_ns.store(static_cast<uint64_t>(seconds * 1e9),
                 std::memory_order_relaxed);
}

WindowOptions FakeWindow(size_t buckets, double tick_seconds) {
  WindowOptions options;
  options.buckets = buckets;
  options.tick_seconds = tick_seconds;
  options.now_ns = &FakeNow;
  return options;
}

/// Tracker with one latency objective (50 ms @ 90%) and one ratio objective
/// (99.9% availability); long window 4 s, short window 2 s, both on the fake
/// clock.
SloTrackerOptions TestOptions() {
  SloTrackerOptions options;
  options.objectives.push_back({"latency", 0.05, 0.9});
  options.objectives.push_back({"availability", 0.0, 0.999});
  options.burn_threshold = 2.0;
  options.long_window = FakeWindow(4, 1.0);
  options.short_window = FakeWindow(2, 1.0);
  return options;
}

size_t CountKind(const std::vector<TelemetryEvent>& events, const char* kind) {
  size_t n = 0;
  for (const TelemetryEvent& e : events) {
    if (std::strcmp(e.kind, kind) == 0) ++n;
  }
  return n;
}

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetNowSeconds(0.0);
    SetTelemetrySink(&sink_);
  }
  void TearDown() override { SetTelemetrySink(nullptr); }

  CollectingSink sink_;
};

TEST_F(SloTest, EventKindsAreRegistered) {
  EXPECT_TRUE(IsRegisteredEvent("slo_breach"));
  EXPECT_TRUE(IsRegisteredEvent("slo_recover"));
}

TEST_F(SloTest, NoDataNoBreach) {
  SloTracker tracker(TestOptions());
  tracker.Evaluate();
  const SloReport report = tracker.Report();
  ASSERT_EQ(report.objectives.size(), 2u);
  EXPECT_FALSE(report.AnyBreached());
  EXPECT_EQ(report.TotalBreaches(), 0u);
  EXPECT_DOUBLE_EQ(report.objectives[0].burn_rate_long, 0.0);
  EXPECT_EQ(sink_.size(), 0u);
}

TEST_F(SloTest, BreachFiresOnceAndRecoversWhenWindowsDrain) {
  SloTracker tracker(TestOptions());
  // Every request blows the 50 ms threshold: error rate 1.0 against a 0.1
  // budget is a 10x burn in both windows — well past the 2x threshold.
  for (int i = 0; i < 20; ++i) tracker.RecordLatency(0, 0.2);
  tracker.Evaluate();
  tracker.Evaluate();  // the edge must not re-fire while still breached.

  SloReport report = tracker.Report();
  EXPECT_TRUE(report.objectives[0].breached);
  EXPECT_EQ(report.objectives[0].breaches, 1u);
  EXPECT_GE(report.objectives[0].burn_rate_long, 2.0);
  EXPECT_GE(report.objectives[0].burn_rate_short, 2.0);
  // The availability objective saw no traffic and must stay quiet.
  EXPECT_FALSE(report.objectives[1].breached);

  std::vector<TelemetryEvent> events = sink_.TakeEvents();
  EXPECT_EQ(CountKind(events, "slo_breach"), 1u);
  EXPECT_EQ(CountKind(events, "slo_recover"), 0u);

  // Slide both windows past all recorded outcomes: burn drops to zero and
  // the recover edge fires exactly once.
  SetNowSeconds(30.0);
  tracker.Evaluate();
  tracker.Evaluate();
  report = tracker.Report();
  EXPECT_FALSE(report.objectives[0].breached);
  EXPECT_EQ(report.objectives[0].breaches, 1u);
  EXPECT_EQ(report.objectives[0].recoveries, 1u);
  events = sink_.TakeEvents();
  EXPECT_EQ(CountKind(events, "slo_breach"), 0u);
  EXPECT_EQ(CountKind(events, "slo_recover"), 1u);
}

TEST_F(SloTest, ShortWindowGatesTheBreach) {
  // Bad outcomes land only in the long window's older ticks: by the time we
  // evaluate, the short window is clean, so no breach despite a hot long
  // window — the "is it still happening" gate.
  SloTracker tracker(TestOptions());
  for (int i = 0; i < 20; ++i) tracker.RecordLatency(0, 0.2);
  // Advance past the short window (2 s) but stay inside the long (4 s).
  SetNowSeconds(2.5);
  for (int i = 0; i < 5; ++i) tracker.RecordLatency(0, 0.001);
  tracker.Evaluate();
  const SloReport report = tracker.Report();
  EXPECT_FALSE(report.objectives[0].breached);
  EXPECT_GE(report.objectives[0].burn_rate_long, 2.0);
  EXPECT_LT(report.objectives[0].burn_rate_short, 2.0);
  EXPECT_EQ(sink_.size(), 0u);
}

TEST_F(SloTest, RatioObjectiveAndBudgetAccounting) {
  SloTrackerOptions options = TestOptions();
  options.objectives[1].target = 0.9;  // budget 0.1 for round numbers.
  SloTracker tracker(options);
  for (int i = 0; i < 5; ++i) tracker.Record(1, true);
  for (int i = 0; i < 5; ++i) tracker.Record(1, false);
  tracker.Evaluate();
  const SloReport report = tracker.Report();
  EXPECT_EQ(report.objectives[1].good, 5u);
  EXPECT_EQ(report.objectives[1].bad, 5u);
  // Error rate 0.5 over budget 0.1: five lifetimes of budget consumed and a
  // 5x burn in both windows.
  EXPECT_NEAR(report.objectives[1].budget_consumed, 5.0, 1e-9);
  EXPECT_NEAR(report.objectives[1].burn_rate_long, 5.0, 1e-9);
  EXPECT_TRUE(report.objectives[1].breached);
}

TEST_F(SloTest, LatencyClassification) {
  SloTracker tracker(TestOptions());
  tracker.RecordLatency(0, 0.01);   // under threshold: good.
  tracker.RecordLatency(0, 0.049);  // still good.
  tracker.RecordLatency(0, 0.2);    // bad.
  const SloReport report = tracker.Report();
  EXPECT_EQ(report.objectives[0].good, 2u);
  EXPECT_EQ(report.objectives[0].bad, 1u);
}

TEST_F(SloTest, HighThresholdNeverFires) {
  SloTrackerOptions options = TestOptions();
  // Budget 0.1, threshold 1000x: an error rate of 100 is impossible, so even
  // an all-bad stream must not page.
  options.burn_threshold = 1000.0;
  SloTracker tracker(options);
  for (int i = 0; i < 50; ++i) tracker.RecordLatency(0, 1.0);
  tracker.Evaluate();
  EXPECT_FALSE(tracker.Report().AnyBreached());
  EXPECT_EQ(sink_.size(), 0u);
}

TEST_F(SloTest, TelemetryCanBeDisabled) {
  SloTrackerOptions options = TestOptions();
  options.emit_telemetry = false;
  SloTracker tracker(options);
  for (int i = 0; i < 20; ++i) tracker.RecordLatency(0, 0.2);
  tracker.Evaluate();
  EXPECT_TRUE(tracker.Report().objectives[0].breached);  // state still flips.
  EXPECT_EQ(sink_.size(), 0u);                           // but no events.
}

TEST_F(SloTest, RenderingsNameEveryObjective) {
  SloTracker tracker(TestOptions());
  tracker.RecordLatency(0, 0.2);
  tracker.Record(1, true);
  tracker.Evaluate();

  const std::string js = tracker.ToJsonValue();
  EXPECT_NE(js.find("\"latency\""), std::string::npos);
  EXPECT_NE(js.find("\"availability\""), std::string::npos);

  std::string prom;
  tracker.AppendPrometheus(&prom);
  EXPECT_NE(prom.find("eadrl_slo_burn_rate"), std::string::npos);
  EXPECT_NE(prom.find("eadrl_slo_budget_consumed"), std::string::npos);
  EXPECT_NE(prom.find("objective=\"latency\""), std::string::npos);
}

}  // namespace
}  // namespace eadrl::obs
