#include "nn/dense.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/param.h"

namespace eadrl::nn {
namespace {

TEST(DenseTest, ForwardComputesAffineTransform) {
  Rng rng(1);
  Dense layer(2, 2, Activation::kIdentity, rng);
  // Overwrite weights with known values.
  auto params = layer.Params();
  params[0]->value = math::Matrix{{1, 2}, {3, 4}};
  params[1]->value = math::Matrix{{0.5, -0.5}};  // bias is a flat 1 x out row.
  math::Vec y = layer.Forward({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], 6.5);
}

TEST(DenseTest, ReluClampsNegativePreactivations) {
  Rng rng(1);
  Dense layer(1, 2, Activation::kRelu, rng);
  auto params = layer.Params();
  params[0]->value = math::Matrix{{1.0}, {-1.0}};
  params[1]->value = math::Matrix{{0.0, 0.0}};
  math::Vec y = layer.Forward({2.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

// Finite-difference gradient check of weight, bias and input gradients.
class DenseGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(DenseGradCheck, MatchesFiniteDifferences) {
  Rng rng(7);
  Dense layer(3, 2, GetParam(), rng);
  math::Vec x{0.3, -0.8, 1.2};
  math::Vec target{0.5, -0.1};

  auto loss_value = [&]() {
    math::Vec y = layer.Forward(x);
    return MseLoss(y, target).value;
  };

  // Analytic gradients.
  math::Vec y = layer.Forward(x);
  LossResult loss = MseLoss(y, target);
  for (Param* p : layer.Params()) p->ZeroGrad();
  math::Vec dx = layer.Backward(loss.grad);

  const double eps = 1e-6;
  for (Param* p : layer.Params()) {
    for (size_t i = 0; i < p->value.data().size(); ++i) {
      double orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      double up = loss_value();
      p->value.data()[i] = orig - eps;
      double down = loss_value();
      p->value.data()[i] = orig;
      double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric, 1e-5);
    }
  }
  // Input gradient.
  for (size_t i = 0; i < x.size(); ++i) {
    double orig = x[i];
    x[i] = orig + eps;
    double up = loss_value();
    x[i] = orig - eps;
    double down = loss_value();
    x[i] = orig;
    EXPECT_NEAR(dx[i], (up - down) / (2.0 * eps), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, DenseGradCheck,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kTanh,
                                           Activation::kSigmoid,
                                           Activation::kRelu));

TEST(ParamTest, ClipGradNormScalesDown) {
  Param p(2, 1);
  p.grad(0, 0) = 3.0;
  p.grad(1, 0) = 4.0;
  std::vector<Param*> ps{&p};
  double norm = ClipGradNorm(ps, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(p.grad(0, 0), 0.6, 1e-9);
  EXPECT_NEAR(p.grad(1, 0), 0.8, 1e-9);
}

TEST(ParamTest, ClipGradNormLeavesSmallGradients) {
  Param p(1, 1);
  p.grad(0, 0) = 0.5;
  std::vector<Param*> ps{&p};
  ClipGradNorm(ps, 1.0);
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.5);
}

TEST(ParamTest, SoftUpdateInterpolates) {
  Param target(1, 1), source(1, 1);
  target.value(0, 0) = 0.0;
  source.value(0, 0) = 10.0;
  SoftUpdate({&target}, {&source}, 0.1);
  EXPECT_NEAR(target.value(0, 0), 1.0, 1e-12);
}

TEST(ParamTest, CopyParamsIsExact) {
  Param target(1, 2), source(1, 2);
  source.value(0, 0) = 3.0;
  source.value(0, 1) = -7.0;
  CopyParams({&target}, {&source});
  EXPECT_DOUBLE_EQ(target.value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(target.value(0, 1), -7.0);
}

}  // namespace
}  // namespace eadrl::nn
