#include "common/logging.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace eadrl {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroCompilesForAllLevels) {
  // Silence output for the test; the point is that emission does not crash
  // and streaming of mixed types works.
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EADRL_LOG(Debug) << "debug " << 1;
  EADRL_LOG(Info) << "info " << 2.5;
  EADRL_LOG(Warning) << "warning " << std::string("s");
  SetLogLevel(original);
}

TEST(LoggingTest, SinkReceivesRecordsAboveThreshold) {
  struct CaptureSink : public LogSink {
    void Write(const LogRecord& record) override {
      records.push_back(record);
    }
    std::vector<LogRecord> records;
  } capture;

  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  SetLogSink(&capture);
  EADRL_LOG(Info) << "below threshold";
  EADRL_LOG(Warning) << "captured " << 7;
  EADRL_LOG(Error) << "also captured";
  SetLogSink(nullptr);
  SetLogLevel(original);

  ASSERT_EQ(capture.records.size(), 2u);
  EXPECT_EQ(capture.records[0].level, LogLevel::kWarning);
  EXPECT_EQ(capture.records[0].message, "captured 7");
  EXPECT_EQ(capture.records[1].level, LogLevel::kError);
  EXPECT_GT(capture.records[0].line, 0);
  EXPECT_GT(capture.records[0].unix_seconds, 0.0);
}

TEST(LoggingTest, SinkAccessorRoundTrip) {
  EXPECT_EQ(GetLogSink(), nullptr);
  struct NullSink : public LogSink {
    void Write(const LogRecord&) override {}
  } sink;
  SetLogSink(&sink);
  EXPECT_EQ(GetLogSink(), &sink);
  SetLogSink(nullptr);
  EXPECT_EQ(GetLogSink(), nullptr);
}

TEST(LoggingTest, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace eadrl
