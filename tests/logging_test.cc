#include "common/logging.h"

#include <gtest/gtest.h>

namespace eadrl {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroCompilesForAllLevels) {
  // Silence output for the test; the point is that emission does not crash
  // and streaming of mixed types works.
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EADRL_LOG(Debug) << "debug " << 1;
  EADRL_LOG(Info) << "info " << 2.5;
  EADRL_LOG(Warning) << "warning " << std::string("s");
  SetLogLevel(original);
}

TEST(LoggingTest, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace eadrl
