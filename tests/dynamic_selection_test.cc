#include "baselines/dynamic_selection.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eadrl::baselines {
namespace {

// m models: model 0 accurate, models 1 and 2 identical to each other (highly
// correlated), model 3 poor.
void MakeClusterableData(size_t t_steps, uint64_t seed, math::Matrix* preds,
                         math::Vec* actuals) {
  Rng rng(seed);
  actuals->resize(t_steps);
  *preds = math::Matrix(t_steps, 4);
  for (size_t t = 0; t < t_steps; ++t) {
    double x = std::sin(0.3 * static_cast<double>(t)) * 3.0 + 10.0;
    (*actuals)[t] = x;
    double shared = rng.Normal(0, 0.5);
    (*preds)(t, 0) = x + rng.Normal(0, 0.05);
    (*preds)(t, 1) = x + shared + 0.3;
    (*preds)(t, 2) = x + shared + 0.31;  // near-duplicate of model 1.
    (*preds)(t, 3) = x + rng.Normal(0, 3.0);
  }
}

TEST(TopSelTest, SelectsTopModelsOnly) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(60, 1, &preds, &actuals);
  TopSelCombiner topsel(/*top_n=*/2, /*window=*/20);
  ASSERT_TRUE(topsel.Initialize(preds, actuals).ok());
  math::Vec w = topsel.Weights();
  // Exactly two nonzero weights; the bad model 3 excluded.
  size_t nonzero = 0;
  for (double v : w) {
    if (v > 0.0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 2u);
  EXPECT_DOUBLE_EQ(w[3], 0.0);
  EXPECT_GT(w[0], 0.0);
}

TEST(TopSelTest, WeightsSumToOne) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(60, 2, &preds, &actuals);
  TopSelCombiner topsel(3, 10);
  ASSERT_TRUE(topsel.Initialize(preds, actuals).ok());
  math::Vec w = topsel.Weights();
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ClusteringTest, GroupsCorrelatedModels) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(60, 3, &preds, &actuals);
  SlidingErrorTracker tracker(4, 40);
  tracker.Warm(preds, actuals);

  auto clusters = ClusterModelsByCorrelation(tracker, 0.05);
  // Models 1 and 2 are near-duplicates; they must share a cluster.
  bool found_pair = false;
  for (const auto& cluster : clusters) {
    bool has1 = std::find(cluster.begin(), cluster.end(), 1u) != cluster.end();
    bool has2 = std::find(cluster.begin(), cluster.end(), 2u) != cluster.end();
    if (has1 && has2) found_pair = true;
  }
  EXPECT_TRUE(found_pair);
  EXPECT_LT(clusters.size(), 4u);
}

TEST(ClusteringTest, ZeroThresholdKeepsAllSeparate) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(60, 4, &preds, &actuals);
  SlidingErrorTracker tracker(4, 40);
  tracker.Warm(preds, actuals);
  auto clusters = ClusterModelsByCorrelation(tracker, -1.0);
  EXPECT_EQ(clusters.size(), 4u);
}

TEST(ClusCombinerTest, DropsRedundantModelFromCommittee) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(80, 5, &preds, &actuals);
  ClusCombiner clus(/*window=*/40, /*distance_threshold=*/0.05,
                    /*recluster_every=*/10);
  ASSERT_TRUE(clus.Initialize(preds, actuals).ok());
  const auto& reps = clus.representatives();
  // Of the near-duplicates (1, 2), at most one is a representative.
  size_t dup_count = 0;
  for (size_t r : reps) {
    if (r == 1 || r == 2) ++dup_count;
  }
  EXPECT_LE(dup_count, 1u);
}

TEST(ClusCombinerTest, WeightsValid) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(80, 6, &preds, &actuals);
  ClusCombiner clus;
  ASSERT_TRUE(clus.Initialize(preds, actuals).ok());
  math::Vec w = clus.Weights();
  double sum = 0.0;
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DemscTest, InitializeBuildsCommittee) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(80, 7, &preds, &actuals);
  DemscCombiner demsc;
  ASSERT_TRUE(demsc.Initialize(preds, actuals).ok());
  EXPECT_FALSE(demsc.committee().empty());
  EXPECT_EQ(demsc.drift_count(), 0u);
}

TEST(DemscTest, DriftTriggersCommitteeRebuild) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(80, 8, &preds, &actuals);
  DemscCombiner::Params params;
  params.ph_lambda = 2.0;  // sensitive detector for the test.
  DemscCombiner demsc(params);
  ASSERT_TRUE(demsc.Initialize(preds, actuals).ok());

  // Feed a sudden large-error regime: every model is far off.
  Rng rng(9);
  for (int t = 0; t < 60; ++t) {
    math::Vec p{100.0, 101.0, 102.0, 103.0};
    demsc.Update(p, 10.0 + rng.Normal(0, 0.1));
  }
  EXPECT_GE(demsc.drift_count(), 1u);
}

TEST(DemscTest, StationaryRegimeNoDrift) {
  math::Matrix preds;
  math::Vec actuals;
  MakeClusterableData(80, 10, &preds, &actuals);
  DemscCombiner demsc;
  ASSERT_TRUE(demsc.Initialize(preds, actuals).ok());
  Rng rng(11);
  for (int t = 0; t < 100; ++t) {
    double x = 10.0 + rng.Normal(0, 0.2);
    math::Vec p{x + rng.Normal(0, 0.05), x + 0.3, x + 0.31,
                x + rng.Normal(0, 3.0)};
    demsc.Update(p, x);
  }
  EXPECT_EQ(demsc.drift_count(), 0u);
}

}  // namespace
}  // namespace eadrl::baselines
