// Labeled drill-down cardinality guard (src/obs/cardinality.h): the label
// set must stay hard-bounded under adversarial churn — fresh tails reject
// new labels into `overflow`, stale tails are displaced (`evictions`), and
// the top-K snapshot orders by windowed activity.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/cardinality.h"
#include "obs/window.h"

namespace eadrl::obs {
namespace {

std::atomic<uint64_t> g_now_ns{0};

uint64_t FakeNow() { return g_now_ns.load(std::memory_order_relaxed); }

void SetNowSeconds(double seconds) {
  g_now_ns.store(static_cast<uint64_t>(seconds * 1e9),
                 std::memory_order_relaxed);
}

LabeledWindowedFamilyOptions TestOptions(size_t max_labels) {
  LabeledWindowedFamilyOptions options;
  options.name = "test_family_seconds";
  options.label_key = "tenant";
  options.max_labels = max_labels;
  options.window.buckets = 4;
  options.window.tick_seconds = 1.0;
  options.window.now_ns = &FakeNow;  // stale span = 4 s on the fake clock.
  return options;
}

TEST(CardinalityTest, FreshTailOverflowsInsteadOfEvicting) {
  SetNowSeconds(0.0);
  LabeledWindowedFamily family(TestOptions(4));
  for (const char* label : {"a", "b", "c", "d"}) family.Observe(label, 0.01);
  EXPECT_EQ(family.TrackedLabels(), 4u);

  // At the cap with every slot fresh: a new label must NOT tear down an
  // active tenant's window — it is counted and dropped.
  family.Observe("e", 0.01);
  EXPECT_EQ(family.TrackedLabels(), 4u);
  EXPECT_EQ(family.Overflow(), 1u);
  EXPECT_EQ(family.Evictions(), 0u);
  const LabeledWindowedFamilySnapshot snap = family.Snapshot();
  for (const LabeledWindowSnapshot& row : snap.top) {
    EXPECT_NE(row.label, "e");
  }
}

TEST(CardinalityTest, StaleTailIsDisplaced) {
  SetNowSeconds(0.0);
  LabeledWindowedFamily family(TestOptions(2));
  family.Observe("old", 0.01);
  family.Observe("warm", 0.01);

  // 10 s later both are stale (> the 4 s window span); "warm" gets a fresh
  // observation, so the LRU tail is "old" — the new label displaces it.
  SetNowSeconds(10.0);
  family.Observe("warm", 0.02);
  family.Observe("fresh", 0.03);
  EXPECT_EQ(family.TrackedLabels(), 2u);
  EXPECT_EQ(family.Evictions(), 1u);
  EXPECT_EQ(family.Overflow(), 0u);

  const LabeledWindowedFamilySnapshot snap = family.Snapshot();
  ASSERT_EQ(snap.top.size(), 2u);
  for (const LabeledWindowSnapshot& row : snap.top) {
    EXPECT_NE(row.label, "old");
  }
}

TEST(CardinalityTest, TopKOrdersByWindowedActivity) {
  SetNowSeconds(0.0);
  LabeledWindowedFamily family(TestOptions(8));
  for (int i = 0; i < 5; ++i) family.Observe("busy", 0.01);
  for (int i = 0; i < 3; ++i) family.Observe("medium", 0.01);
  family.Observe("quiet", 0.01);

  const LabeledWindowedFamilySnapshot all = family.Snapshot();
  ASSERT_EQ(all.top.size(), 3u);
  EXPECT_EQ(all.top[0].label, "busy");
  EXPECT_EQ(all.top[1].label, "medium");
  EXPECT_EQ(all.top[2].label, "quiet");
  EXPECT_EQ(all.top[0].window.values.count, 5u);
  EXPECT_EQ(all.top[0].cumulative_count, 5u);

  const LabeledWindowedFamilySnapshot top2 = family.Snapshot(2);
  ASSERT_EQ(top2.top.size(), 2u);
  EXPECT_EQ(top2.tracked_labels, 3u);  // guard counters cover all slots.
  EXPECT_EQ(top2.top[0].label, "busy");
}

TEST(CardinalityTest, BoundedUnderTenThousandLabelChurn) {
  SetNowSeconds(0.0);
  const size_t kCap = 8;
  LabeledWindowedFamily family(TestOptions(kCap));
  for (int i = 0; i < 10000; ++i) {
    // The clock creeps forward ~1 ms per distinct label, so slots go stale
    // in waves: the run exercises both the overflow and the eviction path.
    SetNowSeconds(0.001 * i);
    family.Observe("tenant-" + std::to_string(i), 0.01);
  }
  EXPECT_LE(family.TrackedLabels(), kCap);
  EXPECT_GT(family.Overflow(), 0u);
  EXPECT_GT(family.Evictions(), 0u);
  // Every observation either claimed one of the kCap seats, displaced a
  // stale slot, or overflowed — nothing else can happen at the cap.
  EXPECT_EQ(kCap + family.Evictions() + family.Overflow(), 10000u);
}

TEST(CardinalityTest, Renderings) {
  SetNowSeconds(0.0);
  LabeledWindowedFamily family(TestOptions(4));
  family.Observe("a", 0.010);
  family.Observe("a", 0.020);
  family.Observe("b", 0.030);

  const std::string js = family.ToJsonValue();
  auto parsed = json::Parse(js);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Find("tracked"), nullptr);
  EXPECT_DOUBLE_EQ(root.Find("tracked")->AsNumber(), 2.0);
  const json::Value* top = root.Find("top");
  ASSERT_NE(top, nullptr);
  ASSERT_TRUE(top->is_array());
  ASSERT_EQ(top->AsArray().size(), 2u);

  std::string prom;
  family.AppendPrometheus(&prom);
  EXPECT_NE(prom.find("test_family_seconds_rate"), std::string::npos);
  EXPECT_NE(prom.find("test_family_seconds_p99"), std::string::npos);
  EXPECT_NE(prom.find("tenant=\"a\""), std::string::npos);
  EXPECT_NE(prom.find("test_family_seconds_overflow_total"),
            std::string::npos);
}

}  // namespace
}  // namespace eadrl::obs
