#include <bits/stdc++.h>

int Answer() { return 42; }
