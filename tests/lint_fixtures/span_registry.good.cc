#include "obs/trace.h"

// Non-construction uses of the Span identifier must not match the rule:
// a pointer declaration and a constructor declaration (no string literal in
// the argument slot).
eadrl::obs::Span* g_active = nullptr;

struct Span {
  explicit Span(const char* name);
};

void Train() {
  eadrl::obs::Span span("train");
  span.SetAttr("restarts", 3);
  // Unnamed temporary form.
  eadrl::obs::Span("predict");
}
