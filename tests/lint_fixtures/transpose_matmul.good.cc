#include "math/matrix.h"

eadrl::math::Matrix Gram(const eadrl::math::Matrix& a) {
  return a.MatMulTransposeA(a);
}

eadrl::math::Vec Pullback(const eadrl::math::Matrix& w,
                          const eadrl::math::Vec& dz) {
  // A standalone Transpose() (no product chained onto it) stays legal.
  eadrl::math::Matrix wt = w.Transpose();
  return w.TransposeMatVec(dz);
}
