#include <string>

#include "fake/die.h"

// Mentions of rand() in comments are fine, as are string literals and
// member functions of the same name on someone else's type.
int Roll(Die& die) {
  const std::string doc = "uses rand() internally";  // just a string
  const char* raw = R"(srand(7); rand();)";
  static_cast<void>(doc);
  static_cast<void>(raw);
  return die.rand();
}

int RollPtr(Die* die) { return die->rand(); }
