#include "obs/telemetry.h"

void Train() {
  // Spans lines, like the real emit sites.
  EADRL_TELEMETRY(
      "episode", {{"step", "1"}});
}
