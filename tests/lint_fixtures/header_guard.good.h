#ifndef EADRL_FAKE_GUARDED_H_
#define EADRL_FAKE_GUARDED_H_

int Answer();

#endif  // EADRL_FAKE_GUARDED_H_
