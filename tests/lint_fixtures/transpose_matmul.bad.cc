#include "math/matrix.h"

eadrl::math::Matrix Gram(const eadrl::math::Matrix& a) {
  return a.Transpose().MatMul(a);
}

eadrl::math::Vec Pullback(const eadrl::math::Matrix& w,
                          const eadrl::math::Vec& dz) {
  return w.Transpose().MatVec(dz);
}
