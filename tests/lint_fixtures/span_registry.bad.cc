#include "obs/trace.h"

void Train() {
  eadrl::obs::Span span("totally_unregistered_span");
}
