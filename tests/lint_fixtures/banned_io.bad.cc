#include <cstdio>
#include <iostream>

void Report(double loss) {
  std::cout << "loss=" << loss << "\n";
  printf("loss=%f\n", loss);
}
