#include <mutex>

#include "chk/lockdep.h"

namespace fake {

struct Service;

void RegistryOrder(Service& s) {
  std::lock_guard<chk::OrderedMutex> queue(s.queue_mu_);
  std::lock_guard<chk::OrderedMutex> session(s.session_mu);
  std::lock_guard<chk::OrderedMutex> shard(s.shard_mu);
}

void SequentialNotNested(Service& s) {
  {
    std::lock_guard<chk::OrderedMutex> shard(s.shard_mu);
  }
  // shard_mu released at the brace above, so this is not an inversion.
  std::lock_guard<chk::OrderedMutex> queue(s.queue_mu_);
}

void SameRankPair(Service& a, Service& b) {
  // Same rank twice is legal statically; the runtime tracker enforces the
  // ascending-address discipline.
  std::scoped_lock both(a.session_mu, b.session_mu);
}

}  // namespace fake
