#include <mutex>
#include <vector>

namespace fake {

class Table {
 public:
  void Clear();

 private:
  std::mutex table_mu_;
  std::vector<int> rows_ EADRL_GUARDED_BY(table_mu_);
  std::vector<int> scratch_ EADRL_UNGUARDED;  // rebuilt from rows_ per call.
};

// No mutex member: nothing to enforce, plain data holders stay free.
struct Holder {
  std::vector<int> values;
  int count = 0;
};

// A nested struct without its own mutex may still guard members with the
// enclosing class's mutex (annotation-name validation sees the union).
class Sharded {
 private:
  std::mutex owner_mu_;
  std::vector<int> live_ EADRL_GUARDED_BY(owner_mu_);
  struct Inner {
    std::vector<int> rows EADRL_GUARDED_BY(owner_mu_);
  };
};

}  // namespace fake
