#include <mutex>

namespace fake {

class Counter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    BumpLocked();
  }
  void BumpLocked() EADRL_REQUIRES(mu_) { ++n_; }
  void Rekey() EADRL_REQUIRES(mu_) {
    std::lock_guard<std::mutex> lock(other_mu_);  // a different mutex is fine.
    ++n_;
  }
  void Describe() const EADRL_REQUIRES(mu_);  // declaration only: no body.

 private:
  std::mutex mu_;
  std::mutex other_mu_;
  int n_ = 0;
};

}  // namespace fake
