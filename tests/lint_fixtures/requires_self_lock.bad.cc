#include <mutex>

namespace fake {

class Counter {
 public:
  void BumpLocked() EADRL_REQUIRES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);  // caller already holds mu_.
    ++n_;
  }
  void ResetLocked() EADRL_REQUIRES(mu_) {
    mu_.lock();  // same bug, manual form.
    n_ = 0;
    mu_.unlock();
  }

 private:
  std::mutex mu_;
  int n_ = 0;
};

}  // namespace fake
