#include <chrono>

// Monotonic duration measurement is always fine; only calendar time is
// restricted to src/common and src/obs.
double ElapsedSeconds(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}
