#include <memory>

class NoCopy {
 public:
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};

NoCopy& Singleton() {
  static NoCopy* instance =
      new NoCopy();  // NOLINT(naked-new): intentional leak for the fixture
  return *instance;
}

std::unique_ptr<int> Make() { return std::make_unique<int>(7); }
