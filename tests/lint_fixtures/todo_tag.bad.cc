// TODO: wire this through the combiner
int Pending() {
  return 0;  // FIXME handle the empty-pool case
}
