#include <cstdio>

void Report(double loss) {
  // fprintf/snprintf to an explicit stream are the logging backend's tools
  // and stay legal everywhere.
  std::fprintf(stderr, "loss=%f\n", loss);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "loss=%f", loss);
}
