// TODO(eadrl-17): wire this through the combiner
int Pending() {
  return 0;  // FIXME(eadrl-18): handle the empty-pool case
}
