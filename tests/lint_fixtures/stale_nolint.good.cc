#include <cstdlib>

int Roll() {
  return std::rand();  // NOLINT(banned-rand): fixture exercises suppression
}
