#include "fake/include_self_first.h"

#include <vector>

int Size(const std::vector<int>& v) { return static_cast<int>(v.size()); }
