#include <mutex>
#include <vector>

namespace fake {

// A mutex-bearing class: every container member must either be annotated
// with the mutex that guards it or carry an explicit EADRL_UNGUARDED.
class Table {
 public:
  void Clear();

 private:
  std::mutex table_mu_;
  std::vector<int> rows_;
  std::vector<int> cache_ EADRL_GUARDED_BY(nope_mu_);
};

}  // namespace fake
