#include <mutex>

#include "chk/lockdep.h"

namespace fake {

struct Service;

// The selftest binds queue_mu_ -> serve_queue, session_mu -> serve_session,
// shard_mu -> obs_trace_shard, in that registry order.

void Inverted(Service& s) {
  std::lock_guard<chk::OrderedMutex> session(s.session_mu);
  std::lock_guard<chk::OrderedMutex> queue(s.queue_mu_);  // inversion.
}

void InvertedUnderLeaf(Service& s) {
  std::lock_guard<chk::OrderedMutex> shard(s.shard_mu);
  {
    std::unique_lock<chk::OrderedMutex> session(s.session_mu);  // inversion.
  }
}

}  // namespace fake
