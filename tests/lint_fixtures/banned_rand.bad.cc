#include <cstdlib>

int Roll() {
  std::srand(42);
  return std::rand() % 6;
}
