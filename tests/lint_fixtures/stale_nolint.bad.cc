int Clean() {
  int x = 1;  // NOLINT(banned-rand)
  int y = 2;  // NOLINT
  int z = 3;  // NOLINT(no-such-rule)
  return x + y + z;
}
