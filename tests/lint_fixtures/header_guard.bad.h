#pragma once

int Answer();
