#include "obs/telemetry.h"

void Train() {
  EADRL_TELEMETRY("totally_unregistered_kind", {{"step", "1"}});
}
