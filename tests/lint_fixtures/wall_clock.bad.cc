#include <chrono>
#include <ctime>

double Stamp() {
  auto now = std::chrono::system_clock::now();
  static_cast<void>(now);
  return static_cast<double>(time(nullptr));
}
