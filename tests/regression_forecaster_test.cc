#include "models/regression_forecaster.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/forecaster.h"
#include "models/linear.h"
#include "ts/metrics.h"

namespace eadrl::models {
namespace {

ts::Series MakeSine(size_t n) {
  math::Vec v(n);
  for (size_t t = 0; t < n; ++t) {
    v[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 20.0);
  }
  return ts::Series("sine", std::move(v));
}

TEST(RegressionForecasterTest, NameForwarded) {
  RegressionForecaster f("ridge-test", 5, std::make_unique<RidgeRegressor>());
  EXPECT_EQ(f.name(), "ridge-test");
}

TEST(RegressionForecasterTest, LearnsDeterministicPattern) {
  ts::Series s = MakeSine(300);
  auto split = ts::SplitTrainTest(s, 0.8);
  RegressionForecaster f("ridge", 5, std::make_unique<RidgeRegressor>(1e-6));
  ASSERT_TRUE(f.Fit(split.train).ok());
  math::Vec preds = RollingForecast(&f, split.test);
  // A sine is a linear AR process; ridge on 5 lags should nail it.
  EXPECT_LT(ts::Rmse(split.test.values(), preds), 0.02);
}

TEST(RegressionForecasterTest, WindowSlidesWithObserve) {
  // Train on the identity-ish ramp so predictions follow the window.
  math::Vec v(100);
  for (size_t t = 0; t < 100; ++t) v[t] = static_cast<double>(t);
  RegressionForecaster f("ridge", 3, std::make_unique<RidgeRegressor>(1e-8));
  ASSERT_TRUE(f.Fit(ts::Series("ramp", std::move(v))).ok());
  double p1 = f.PredictNext();
  EXPECT_NEAR(p1, 100.0, 1.0);
  f.Observe(100.0);
  EXPECT_NEAR(f.PredictNext(), 101.0, 1.0);
}

TEST(RegressionForecasterTest, RejectsTooShortSeries) {
  RegressionForecaster f("ridge", 5, std::make_unique<RidgeRegressor>());
  EXPECT_FALSE(f.Fit(ts::Series("tiny", {1, 2, 3})).ok());
}

TEST(RegressionForecasterTest, ScalingMakesItRobustToSeriesLevel) {
  // Same pattern at a huge offset; predictions must follow the level.
  math::Vec v(200);
  for (size_t t = 0; t < 200; ++t) {
    v[t] = 1e6 + std::sin(2.0 * M_PI * static_cast<double>(t) / 10.0);
  }
  ts::Series s("offset-sine", std::move(v));
  auto split = ts::SplitTrainTest(s, 0.8);
  RegressionForecaster f("ridge", 5, std::make_unique<RidgeRegressor>(1e-6));
  ASSERT_TRUE(f.Fit(split.train).ok());
  math::Vec preds = RollingForecast(&f, split.test);
  EXPECT_LT(ts::Rmse(split.test.values(), preds), 0.1);
}

}  // namespace
}  // namespace eadrl::models
