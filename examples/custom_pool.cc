// Building a custom base-model pool and wiring it to EA-DRL by hand — the
// path a downstream user takes when their models are not the paper's 43.
// Also shows how to tune the EA-DRL configuration (reward, sampling, window).
//
//   $ ./example_custom_pool

#include <cstdio>
#include <memory>
#include <vector>

#include "core/eadrl.h"
#include "models/arima.h"
#include "models/ets.h"
#include "models/forecaster.h"
#include "models/linear.h"
#include "models/regression_forecaster.h"
#include "models/tree.h"
#include "ts/datasets.h"
#include "ts/metrics.h"

int main() {
  auto series = eadrl::ts::MakeDataset(/*id=*/5, /*seed=*/4, /*length=*/500);
  if (!series.ok()) return 1;

  // Chronological splits: fit | validation | test.
  auto outer = eadrl::ts::SplitTrainTest(*series, 0.75);
  auto inner = eadrl::ts::SplitTrainTest(outer.train, 0.7);

  // 1. A hand-picked pool: two statistical models plus two embedded
  //    regressors (k = 5). Any class implementing eadrl::models::Forecaster
  //    can join the pool.
  std::vector<std::unique_ptr<eadrl::models::Forecaster>> pool;
  pool.push_back(std::make_unique<eadrl::models::ArimaForecaster>(2, 1, 1));
  pool.push_back(std::make_unique<eadrl::models::EtsForecaster>(
      eadrl::models::EtsVariant::kHolt));
  pool.push_back(std::make_unique<eadrl::models::RegressionForecaster>(
      "ridge(k=5)", 5, std::make_unique<eadrl::models::RidgeRegressor>()));
  pool.push_back(std::make_unique<eadrl::models::RegressionForecaster>(
      "cart(k=5)", 5,
      std::make_unique<eadrl::models::RegressionTree>(
          eadrl::models::TreeParams{8, 3, 0})));

  for (auto& model : pool) {
    eadrl::Status st = model->Fit(inner.train);
    if (!st.ok()) {
      std::printf("fit %s: %s\n", model->name().c_str(),
                  st.ToString().c_str());
      return 1;
    }
  }

  // 2. Roll the pool over validation and test to build prediction matrices.
  auto roll = [&](const eadrl::ts::Series& segment) {
    eadrl::math::Matrix preds(segment.size(), pool.size());
    for (size_t t = 0; t < segment.size(); ++t) {
      for (size_t m = 0; m < pool.size(); ++m) {
        preds(t, m) = pool[m]->PredictNext();
      }
      for (auto& model : pool) model->Observe(segment[t]);
    }
    return preds;
  };
  eadrl::math::Matrix val_preds = roll(inner.test);
  eadrl::math::Matrix test_preds = roll(outer.test);

  // 3. Configure EA-DRL: rank reward + median-split sampling (the paper's
  //    choices); try swapping these to see Fig. 2 / Q3 behaviour.
  eadrl::core::EadrlConfig cfg;
  cfg.omega = 10;
  cfg.max_episodes = 40;
  cfg.reward_type = eadrl::rl::RewardType::kRank;
  cfg.sampling = eadrl::rl::SamplingStrategy::kMedianSplit;

  eadrl::core::EadrlCombiner combiner(cfg);
  eadrl::Status st = combiner.Initialize(val_preds, inner.test.values());
  if (!st.ok()) {
    std::printf("EA-DRL: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("policy trained in %zu episodes\n",
              combiner.episode_rewards().size());

  // 4. Online forecasting over the test segment.
  eadrl::math::Vec forecasts(outer.test.size());
  for (size_t t = 0; t < outer.test.size(); ++t) {
    forecasts[t] = combiner.Predict(test_preds.Row(t));
    combiner.Update(test_preds.Row(t), outer.test[t]);
  }
  std::printf("EA-DRL test RMSE: %.4f\n",
              eadrl::ts::Rmse(outer.test.values(), forecasts));

  // Per-model comparison.
  for (size_t m = 0; m < pool.size(); ++m) {
    std::printf("  %-12s test RMSE: %.4f\n", pool[m]->name().c_str(),
                eadrl::ts::Rmse(outer.test.values(), test_preds.Col(m)));
  }
  std::printf("\nfinal weights:");
  for (double w : combiner.Weights()) std::printf(" %.3f", w);
  std::printf("\n");
  return 0;
}
