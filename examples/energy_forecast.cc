// Multi-step forecasting of dew-point temperature (appliances-energy station
// data) with paper Algorithm 1: after the policy is learned offline, the
// state window rolls forward on the ensemble's own predictions, so N_f
// future values are forecast without seeing any new ground truth.
//
//   $ ./example_energy_forecast

#include <cstdio>

#include "core/eadrl.h"
#include "exp/experiment.h"
#include "math/stats.h"
#include "models/forecaster.h"
#include "models/pool.h"
#include "ts/datasets.h"
#include "ts/metrics.h"
#include "ts/series.h"

int main() {
  const size_t n_forecast = 24;  // N_f: 4 hours of 10-minute steps.

  auto series = eadrl::ts::MakeDataset(/*id=*/17, /*seed=*/11,
                                       /*length=*/500);
  if (!series.ok()) return 1;

  // Hold out the last N_f points as the multi-step target.
  eadrl::ts::Series history =
      series->Slice(0, series->size() - n_forecast);
  eadrl::ts::Series future =
      series->Slice(series->size() - n_forecast, series->size());

  // Learn the combination policy on the historical segment.
  eadrl::exp::ExperimentOptions opt;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 6;
  opt.eadrl.omega = 10;
  opt.eadrl.max_episodes = 30;
  eadrl::exp::PoolRun pool = eadrl::exp::PreparePool(history, opt);

  eadrl::core::EadrlCombiner combiner(opt.eadrl);
  eadrl::Status st = combiner.Initialize(pool.val_preds, pool.val_actuals);
  if (!st.ok()) {
    std::printf("EA-DRL: %s\n", st.ToString().c_str());
    return 1;
  }

  // Refit a fresh pool on the full history so the base models' state sits at
  // the forecasting origin.
  eadrl::models::PoolConfig pool_cfg = opt.pool;
  auto models = eadrl::models::FitPool(
      eadrl::models::BuildPaperPool(pool_cfg), history);

  // Algorithm 1: for each step, query every base model, combine with the
  // policy's weights, then feed the *prediction* back to the models and the
  // state window.
  eadrl::math::Vec forecast;
  for (size_t j = 0; j < n_forecast; ++j) {
    eadrl::math::Vec base_preds;
    for (auto& model : models) base_preds.push_back(model->PredictNext());
    double combined = combiner.Predict(base_preds);
    forecast.push_back(combined);
    for (auto& model : models) model->Observe(combined);
  }

  std::printf("Algorithm 1 rollout, N_f = %zu steps ahead:\n\n", n_forecast);
  std::printf("  step   forecast    actual\n");
  for (size_t j = 0; j < n_forecast; ++j) {
    std::printf("  %4zu   %8.3f  %8.3f\n", j + 1, forecast[j], future[j]);
  }
  std::printf("\nmulti-step RMSE: %.3f (series stddev %.3f)\n",
              eadrl::ts::Rmse(future.values(), forecast),
              eadrl::math::Stddev(series->values()));
  return 0;
}
