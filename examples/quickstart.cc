// Quickstart: build a pool of base forecasters, learn an EA-DRL combination
// policy offline, and forecast a held-out segment online.
//
//   $ ./example_quickstart
//   $ ./example_quickstart --trace trace.json   # + Chrome trace of the run
//
// The optional trace file loads in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing and shows the causal span tree of the whole run.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/eadrl.h"
#include "exp/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ts/datasets.h"
#include "ts/metrics.h"

int main(int argc, char** argv) {
  // 0. Optional tracing: install a TraceBuffer for the duration of the run
  //    and export it as Chrome trace-event JSON at the end.
  std::string trace_path;
  if (argc == 3 && std::strcmp(argv[1], "--trace") == 0) {
    trace_path = argv[2];
  } else if (argc != 1) {
    std::printf("usage: %s [--trace out.json]\n", argv[0]);
    return 2;
  }
  std::unique_ptr<eadrl::obs::TraceBuffer> trace_buffer;
  if (!trace_path.empty()) {
    eadrl::obs::SetCurrentThreadTraceName("main");
    trace_buffer = std::make_unique<eadrl::obs::TraceBuffer>();
    eadrl::obs::SetTraceBuffer(trace_buffer.get());
  }
  struct TraceGuard {
    eadrl::obs::TraceBuffer* buffer;
    const std::string* path;
    ~TraceGuard() {
      if (buffer == nullptr) return;
      eadrl::obs::SetTraceBuffer(nullptr);  // drains in-flight records.
      eadrl::Status st = buffer->WriteChromeTrace(*path);
      if (st.ok()) {
        std::printf("trace written to %s (%zu spans)\n", path->c_str(),
                    buffer->size());
      } else {
        std::printf("trace export failed: %s\n", st.ToString().c_str());
      }
    }
  } trace_guard{trace_buffer.get(), &trace_path};

  // 1. Get a time series (here: the synthetic SMI stock-index series; swap
  //    in your own eadrl::ts::Series from any source, e.g. ts::LoadCsv).
  auto series = eadrl::ts::MakeDataset(/*id=*/20, /*seed=*/42,
                                       /*length=*/400);
  if (!series.ok()) {
    std::printf("dataset: %s\n", series.status().ToString().c_str());
    return 1;
  }
  std::printf("series: %s (%zu points, %s)\n", series->name().c_str(),
              series->size(), series->frequency().c_str());

  // 2. Configure the experiment: a reduced 10-model pool for speed and the
  //    paper's EA-DRL hyper-parameters (gamma = 0.9, omega = 10).
  eadrl::exp::ExperimentOptions opt;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 6;
  opt.eadrl.omega = 10;
  opt.eadrl.max_episodes = 30;

  // 3. Fit the pool and roll it over validation + test.
  eadrl::exp::PoolRun pool = eadrl::exp::PreparePool(*series, opt);
  std::printf("pool: %zu fitted base models\n", pool.model_names.size());

  // 4. Learn the combination policy offline (DDPG on the ensemble MDP) and
  //    run it online over the test segment.
  eadrl::core::EadrlCombiner eadrl_combiner(opt.eadrl);
  eadrl::exp::MethodRun run =
      eadrl::exp::RunCombiner(&eadrl_combiner, pool);

  // 5. Compare against the naive static ensemble (simple average).
  auto suite = eadrl::exp::MakeCombinerSuite(opt);
  eadrl::exp::MethodRun se = eadrl::exp::RunCombiner(suite[0].get(), pool);

  std::printf("\ntest RMSE over %zu points:\n", pool.test_actuals.size());
  std::printf("  EA-DRL          %.4f\n", run.rmse);
  std::printf("  simple average  %.4f\n", se.rmse);
  std::printf("\ncurrent EA-DRL weights (top of the simplex):\n");
  eadrl::math::Vec w = eadrl_combiner.Weights();
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] > 1.0 / static_cast<double>(w.size())) {
      std::printf("  %-16s %.3f\n", pool.model_names[i].c_str(), w[i]);
    }
  }

  // 6. Everything above was instrumented through eadrl::obs — dump the
  //    default metric registry (fit times, predict latency, DDPG training
  //    diagnostics) as JSON.
  std::printf("\nmetric registry snapshot:\n%s\n",
              eadrl::obs::MetricRegistry::Default().ToJson().c_str());
  return 0;
}
