// Intraday stock-index forecasting (10-minute DAX data): a near-random-walk
// series where expert-aggregation baselines shine. This example shows how to
// run the whole Table II combiner suite on a single series and print a
// leaderboard — the typical workflow for deciding which combiner to deploy.
//
//   $ ./example_stock_index

#include <algorithm>
#include <cstdio>
#include <vector>

#include "exp/experiment.h"
#include "ts/datasets.h"

int main() {
  auto series = eadrl::ts::MakeDataset(/*id=*/19, /*seed=*/3, /*length=*/500);
  if (!series.ok()) return 1;
  std::printf("series: %s — geometric random walk with volatility "
              "clustering\n\n",
              series->name().c_str());

  eadrl::exp::ExperimentOptions opt;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 6;
  opt.eadrl.max_episodes = 30;
  opt.include_standalone = false;

  eadrl::exp::DatasetResult result = eadrl::exp::RunDataset(*series, opt);

  std::sort(result.methods.begin(), result.methods.end(),
            [](const eadrl::exp::MethodRun& a,
               const eadrl::exp::MethodRun& b) { return a.rmse < b.rmse; });

  std::printf("leaderboard (test RMSE, online ms):\n");
  for (size_t i = 0; i < result.methods.size(); ++i) {
    const auto& run = result.methods[i];
    std::printf("  %2zu. %-10s %10.4f   %8.3f ms\n", i + 1,
                run.name.c_str(), run.rmse, run.runtime_seconds * 1e3);
  }
  return 0;
}
