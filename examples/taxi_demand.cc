// Taxi-demand forecasting under concept drift — the scenario that motivates
// dynamic ensembles in the paper's introduction (cf. the BRIGHT system).
// The taxi series contains level shifts; this example compares EA-DRL with
// the drift-aware DEMSC baseline and the sliding-window ensemble.
//
//   $ ./example_taxi_demand

#include <cstdio>

#include "baselines/dynamic_selection.h"
#include "baselines/static_combiners.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "ts/datasets.h"

int main() {
  auto series = eadrl::ts::MakeDataset(/*id=*/9, /*seed=*/7, /*length=*/500);
  if (!series.ok()) return 1;
  std::printf("series: %s — half-hourly pick-up counts with daily/weekly "
              "cycles and level-shift drift\n\n",
              series->name().c_str());

  eadrl::exp::ExperimentOptions opt;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 6;
  opt.eadrl.omega = 10;
  opt.eadrl.max_episodes = 30;
  eadrl::exp::PoolRun pool = eadrl::exp::PreparePool(*series, opt);

  eadrl::core::EadrlCombiner eadrl_combiner(opt.eadrl);
  eadrl::baselines::DemscCombiner demsc;
  eadrl::baselines::SlidingWindowCombiner swe(10);

  eadrl::exp::MethodRun ea = eadrl::exp::RunCombiner(&eadrl_combiner, pool);
  eadrl::exp::MethodRun dm = eadrl::exp::RunCombiner(&demsc, pool);
  eadrl::exp::MethodRun sw = eadrl::exp::RunCombiner(&swe, pool);

  std::printf("test RMSE  /  online time over %zu steps:\n",
              pool.test_actuals.size());
  std::printf("  EA-DRL  %8.3f  /  %.3f ms (policy frozen offline)\n",
              ea.rmse, ea.runtime_seconds * 1e3);
  std::printf("  DEMSC   %8.3f  /  %.3f ms (%zu drift-triggered committee "
              "rebuilds)\n",
              dm.rmse, dm.runtime_seconds * 1e3, demsc.drift_count());
  std::printf("  SWE     %8.3f  /  %.3f ms\n", sw.rmse,
              sw.runtime_seconds * 1e3);

  std::printf("\nEA-DRL achieves dynamic weighting without any online "
              "meta-update,\nwhich is where its Table III runtime advantage "
              "over DEMSC comes from.\n");
  return 0;
}
